#include "src/stats/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/stats/holb.h"
#include "src/stats/metrics.h"
#include "src/stats/table.h"
#include "src/stats/trace_export.h"

namespace daredevil {

namespace {

// The budget never collapses to zero (a 100% target would make every burn
// rate infinite and unserializable), so the target is capped just below it.
constexpr double kMaxTargetPercentile = 99.999;

SloSpec NormalizeSpec(SloSpec spec) {
  spec.target_percentile =
      std::clamp(spec.target_percentile, 0.0, kMaxTargetPercentile);
  if (spec.window <= 0) {
    spec.window = 1;
  }
  if (spec.slow_windows < 1) {
    spec.slow_windows = 1;
  }
  return spec;
}

// Allowed bad-request fraction: p99 -> 0.01.
double BudgetFraction(const SloSpec& spec) {
  return 1.0 - spec.target_percentile / 100.0;
}

}  // namespace

// --- SloTenantState --------------------------------------------------------

SloTenantState::SloTenantState(std::string tenant, uint64_t tenant_id,
                               const SloSpec& spec, Tick origin, Tick horizon)
    : tenant_(std::move(tenant)),
      tenant_id_(tenant_id),
      spec_(NormalizeSpec(spec)),
      origin_(origin),
      horizon_(horizon),
      latencies_(origin, spec_.window) {}

void SloTenantState::Record(Tick at, Tick latency, bool ok) {
  if (at < origin_ || at >= horizon_) {
    ++ignored_;
    return;
  }
  latencies_.Record(at, latency);
  all_latencies_.Record(latency);
  const bool good = ok && latency <= spec_.threshold;
  if (good) {
    ++good_;
    return;
  }
  ++bad_;
  const auto idx = static_cast<size_t>((at - origin_) / spec_.window);
  if (idx >= bad_per_window_.size()) {
    bad_per_window_.resize(idx + 1, 0);
  }
  ++bad_per_window_[idx];
}

// --- SloTracker ------------------------------------------------------------

SloTracker::SloTracker(std::vector<SloSpec> specs, Tick origin, Tick horizon)
    : specs_(std::move(specs)), origin_(origin), horizon_(horizon) {}

const SloSpec* SloTracker::MatchSpec(const std::string& name,
                                     const std::string& group) const {
  for (const SloSpec& spec : specs_) {
    if (spec.selector == name) {
      return &spec;
    }
  }
  for (const SloSpec& spec : specs_) {
    if (spec.selector == group) {
      return &spec;
    }
  }
  return nullptr;
}

SloTenantState* SloTracker::AddTenant(const std::string& name,
                                      const std::string& group,
                                      uint64_t tenant_id) {
  const SloSpec* spec = MatchSpec(name, group);
  if (spec == nullptr) {
    return nullptr;
  }
  states_.push_back(std::make_unique<SloTenantState>(name, tenant_id, *spec,
                                                     origin_, horizon_));
  return states_.back().get();
}

SloReport SloTracker::Finalize() const {
  SloReport report;
  for (const auto& state : states_) {
    SloTenantReport r;
    r.tenant = state->tenant_;
    r.tenant_id = state->tenant_id_;
    r.spec = state->spec_;
    r.good = state->good_;
    r.bad = state->bad_;
    r.ignored = state->ignored_;
    const double budget = BudgetFraction(r.spec);
    const uint64_t total = r.total();
    r.conformance_pct =
        total == 0 ? 100.0
                   : 100.0 * static_cast<double>(r.good) /
                         static_cast<double>(total);
    r.met = r.conformance_pct >= r.spec.target_percentile;
    r.budget_burned =
        total == 0 ? 0.0
                   : static_cast<double>(r.bad) /
                         (budget * static_cast<double>(total));
    r.achieved_ns = state->all_latencies_.Percentile(r.spec.target_percentile);

    // Window math: the fast burn rate is per window, the slow rate the same
    // ratio over the trailing slow_windows windows (prefix sums keep this
    // O(windows)).
    const size_t n = state->latencies_.num_windows();
    std::vector<uint64_t> total_prefix(n + 1, 0);
    std::vector<uint64_t> bad_prefix(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t wtotal = state->latencies_.WindowCount(i);
      const uint64_t wbad =
          i < state->bad_per_window_.size() ? state->bad_per_window_[i] : 0;
      total_prefix[i + 1] = total_prefix[i] + wtotal;
      bad_prefix[i + 1] = bad_prefix[i] + wbad;
    }
    r.windows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      SloWindow w;
      w.start = state->latencies_.WindowStart(i);
      const uint64_t wtotal = total_prefix[i + 1] - total_prefix[i];
      w.bad = bad_prefix[i + 1] - bad_prefix[i];
      w.good = wtotal - w.bad;
      w.fast_burn =
          wtotal == 0 ? 0.0
                      : (static_cast<double>(w.bad) /
                         static_cast<double>(wtotal)) /
                            budget;
      const size_t lo = i + 1 >= static_cast<size_t>(r.spec.slow_windows)
                            ? i + 1 - static_cast<size_t>(r.spec.slow_windows)
                            : 0;
      const uint64_t slow_total = total_prefix[i + 1] - total_prefix[lo];
      const uint64_t slow_bad = bad_prefix[i + 1] - bad_prefix[lo];
      w.slow_burn =
          slow_total == 0 ? 0.0
                          : (static_cast<double>(slow_bad) /
                             static_cast<double>(slow_total)) /
                                budget;
      w.violating = wtotal > 0 && w.fast_burn >= r.spec.burn_alert;
      r.max_slow_burn = std::max(r.max_slow_burn, w.slow_burn);
      r.windows.push_back(w);
    }

    // Episodes: maximal runs of consecutive violating windows.
    for (size_t i = 0; i < r.windows.size();) {
      if (!r.windows[i].violating) {
        ++i;
        continue;
      }
      SloEpisode ep;
      ep.begin = r.windows[i].start;
      ep.mechanism = "unattributed";
      while (i < r.windows.size() && r.windows[i].violating) {
        ep.end = std::min<Tick>(r.windows[i].start + r.spec.window, horizon_);
        ep.bad += r.windows[i].bad;
        ep.total += r.windows[i].good + r.windows[i].bad;
        ep.peak_burn = std::max(ep.peak_burn, r.windows[i].fast_burn);
        ++i;
      }
      r.episodes.push_back(ep);
    }

    report.tenants.emplace(r.tenant, std::move(r));
  }
  return report;
}

// --- SloReport -------------------------------------------------------------

const SloEpisode* SloTenantReport::WorstEpisode() const {
  const SloEpisode* worst = nullptr;
  for (const SloEpisode& ep : episodes) {
    if (worst == nullptr) {
      worst = &ep;
      continue;
    }
    if (ep.duration() != worst->duration()) {
      if (ep.duration() > worst->duration()) {
        worst = &ep;
      }
      continue;
    }
    if (ep.blame_ns != worst->blame_ns) {
      if (ep.blame_ns > worst->blame_ns) {
        worst = &ep;
      }
      continue;
    }
    if (ep.begin < worst->begin) {
      worst = &ep;
    }
  }
  return worst;
}

const SloTenantReport* SloReport::Find(const std::string& tenant) const {
  auto it = tenants.find(tenant);
  return it == tenants.end() ? nullptr : &it->second;
}

double SloReport::AggregateConformancePct() const {
  uint64_t good = 0;
  uint64_t total = 0;
  for (const auto& [name, r] : tenants) {
    good += r.good;
    total += r.total();
  }
  return total == 0 ? 100.0
                    : 100.0 * static_cast<double>(good) /
                          static_cast<double>(total);
}

double SloReport::MaxBudgetBurned() const {
  double worst = 0.0;
  for (const auto& [name, r] : tenants) {
    worst = std::max(worst, r.budget_burned);
  }
  return worst;
}

uint64_t SloReport::TotalEpisodes() const {
  uint64_t n = 0;
  for (const auto& [name, r] : tenants) {
    n += r.episodes.size();
  }
  return n;
}

namespace {

void AppendEpisodeJson(JsonWriter& w, const SloEpisode& ep) {
  w.BeginObject();
  w.Key("begin_ns").Int(ep.begin);
  w.Key("end_ns").Int(ep.end);
  w.Key("bad").UInt(ep.bad);
  w.Key("total").UInt(ep.total);
  w.Key("peak_burn").Double(ep.peak_burn);
  w.Key("blame").String(ep.blame);
  w.Key("mechanism").String(ep.mechanism);
  w.Key("blame_ns").Int(ep.blame_ns);
  w.EndObject();
}

}  // namespace

void SloReport::AppendJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("tenants").BeginObject();
  for (const auto& [name, r] : tenants) {
    w.Key(name).BeginObject();
    w.Key("target_percentile").Double(r.spec.target_percentile);
    w.Key("threshold_ns").Int(r.spec.threshold);
    w.Key("window_ns").Int(r.spec.window);
    w.Key("slow_windows").Int(r.spec.slow_windows);
    w.Key("burn_alert").Double(r.spec.burn_alert);
    w.Key("good").UInt(r.good);
    w.Key("bad").UInt(r.bad);
    w.Key("ignored").UInt(r.ignored);
    w.Key("conformance_pct").Double(r.conformance_pct);
    w.Key("met").Bool(r.met);
    w.Key("budget_burned").Double(r.budget_burned);
    w.Key("achieved_ns").Int(r.achieved_ns);
    w.Key("max_slow_burn").Double(r.max_slow_burn);
    uint64_t violating = 0;
    for (const SloWindow& win : r.windows) {
      violating += win.violating ? 1 : 0;
    }
    w.Key("violating_windows").UInt(violating);
    w.Key("windows").BeginArray();
    for (const SloWindow& win : r.windows) {
      w.BeginObject();
      w.Key("start_ns").Int(win.start);
      w.Key("good").UInt(win.good);
      w.Key("bad").UInt(win.bad);
      w.Key("fast_burn").Double(win.fast_burn);
      w.Key("slow_burn").Double(win.slow_burn);
      w.Key("violating").Bool(win.violating);
      w.EndObject();
    }
    w.EndArray();
    w.Key("episodes").BeginArray();
    for (const SloEpisode& ep : r.episodes) {
      AppendEpisodeJson(w, ep);
    }
    w.EndArray();
    if (const SloEpisode* worst = r.WorstEpisode()) {
      w.Key("worst_episode");
      AppendEpisodeJson(w, *worst);
    }
    w.Key("attribution").BeginArray();
    for (const SloBlameRow& row : r.attribution) {
      w.BeginObject();
      w.Key("key").String(row.key);
      w.Key("blocking_events").UInt(row.blocking_events);
      w.Key("head_block_ns").Int(row.head_block_ns);
      w.Key("fetch_slot_ns").Int(row.fetch_slot_ns);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.Key("aggregate").BeginObject();
  w.Key("conformance_pct").Double(AggregateConformancePct());
  w.Key("max_budget_burned").Double(MaxBudgetBurned());
  w.Key("episodes").UInt(TotalEpisodes());
  w.EndObject();
  w.EndObject();
}

std::string SloReport::ToTable() const {
  TablePrinter table({"tenant", "objective", "conformance", "met",
                      "budget burn", "episodes", "worst episode",
                      "dominant blocker"});
  for (const auto& [name, r] : tenants) {
    char objective[64];
    std::snprintf(objective, sizeof(objective), "p%.5g < %s",
                  r.spec.target_percentile,
                  FormatUs(static_cast<double>(r.spec.threshold)).c_str());
    const SloEpisode* worst = r.WorstEpisode();
    std::string worst_cell = "-";
    std::string blame_cell = "-";
    if (worst != nullptr) {
      worst_cell = FormatUs(static_cast<double>(worst->duration())) + " @ " +
                   FormatMs(static_cast<double>(worst->begin));
      if (!worst->blame.empty()) {
        blame_cell = worst->blame + " (" + worst->mechanism + ")";
      } else {
        blame_cell = worst->mechanism;
      }
    }
    table.AddRow({r.tenant, objective,
                  FormatPercent(r.conformance_pct / 100.0),
                  r.met ? "yes" : "NO",
                  FormatPercent(r.budget_burned),
                  std::to_string(r.episodes.size()), worst_cell, blame_cell});
  }
  return table.Render();
}

// --- Episode attribution ---------------------------------------------------

void AttributeSloEpisodes(SloReport& report,
                          const std::vector<RequestRecord>& records,
                          const std::map<uint64_t, std::string>& tenant_names) {
  if (report.empty() || records.empty()) {
    return;
  }
  for (auto& [name, r] : report.tenants) {
    if (r.tenant_id == 0 || r.episodes.empty()) {
      continue;
    }
    std::map<std::string, SloBlameRow> merged;
    for (SloEpisode& ep : r.episodes) {
      HolbOptions opts;
      opts.victims_latency_sensitive_only = false;
      opts.victim_tenant_id = r.tenant_id;
      opts.victim_complete_begin = ep.begin;
      opts.victim_complete_end = ep.end;
      opts.tenant_names = tenant_names;
      const HolbReport hr = AnalyzeHolBlocking(records, opts);
      // Dominant blocker: the top-ranked tenant other than the victim
      // itself (queueing behind your own requests is not interference).
      const HolbRow* top = nullptr;
      for (const HolbRow& row : hr.by_tenant) {
        if (row.key == r.tenant) {
          continue;
        }
        top = &row;
        break;
      }
      if (top != nullptr) {
        ep.blame = top->key;
        ep.mechanism = top->head_block_ns >= top->fetch_slot_ns
                           ? "same-queue-head"
                           : "fetch-slot";
        ep.blame_ns = top->total_ns();
      }
      for (const HolbRow& row : hr.by_tenant) {
        if (row.key == r.tenant) {
          continue;
        }
        SloBlameRow& agg = merged[row.key];
        agg.key = row.key;
        agg.blocking_events += row.blocking_events;
        agg.head_block_ns += row.head_block_ns;
        agg.fetch_slot_ns += row.fetch_slot_ns;
      }
    }
    r.attribution.clear();
    r.attribution.reserve(merged.size());
    for (auto& [key, row] : merged) {
      r.attribution.push_back(row);
    }
    std::sort(r.attribution.begin(), r.attribution.end(),
              [](const SloBlameRow& a, const SloBlameRow& b) {
                if (a.total_ns() != b.total_ns()) {
                  return a.total_ns() > b.total_ns();
                }
                return a.key < b.key;
              });
  }
}

}  // namespace daredevil
