// Unit tests for the statistics module: histogram, time series, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "src/sim/rng.h"
#include "src/stats/histogram.h"
#include "src/stats/table.h"
#include "src/stats/time_series.h"

namespace daredevil {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  EXPECT_DOUBLE_EQ(h.Mean(), 12345.0);
  // Quantization error is bounded by ~3% in the log-linear mapping.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 12345.0, 12345.0 * 0.04);
}

TEST(HistogramTest, PercentileClampsOutOfRangeP) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  // Out-of-range percentiles clamp to the extremes instead of walking off
  // the bucket array; NaN reads as the tail.
  EXPECT_EQ(h.Percentile(-5.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(250.0), h.Percentile(100.0));
  EXPECT_EQ(h.Percentile(100.0), 30);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(h.Percentile(nan), h.Percentile(100.0));

  Histogram empty;
  EXPECT_EQ(empty.Percentile(-5.0), 0);
  EXPECT_EQ(empty.Percentile(250.0), 0);
  EXPECT_EQ(empty.Percentile(nan), 0);
}

TEST(HistogramTest, SingleSamplePercentilesAllAgree) {
  Histogram h;
  h.Record(42);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 42) << "p=" << p;
  }
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
}

TEST(HistogramTest, AllZeroValuesStayZero) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(0);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  for (double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 0) << "p=" << p;
  }
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 64; ++i) {
    h.Record(i);
  }
  // The base region is exact: percentile of p% is close to p% of 63.
  EXPECT_EQ(h.Percentile(0), 0);
  EXPECT_EQ(h.Percentile(100), 63);
  EXPECT_NEAR(static_cast<double>(h.P50()), 31.5, 1.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, MeanMatchesArithmeticMean) {
  Histogram h;
  double sum = 0;
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<int64_t>(rng.NextBelow(1'000'000));
    h.Record(v);
    sum += static_cast<double>(v);
  }
  EXPECT_DOUBLE_EQ(h.Mean(), sum / 10000.0);
}

TEST(HistogramTest, PercentilesWithinQuantizationError) {
  Histogram h;
  std::vector<int64_t> values;
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    const auto v = static_cast<int64_t>(rng.NextBelow(100'000'000)) + 1;
    h.Record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<size_t>(p / 100.0 * 50000.0) - 1;
    const double exact = static_cast<double>(values[rank]);
    const double approx = static_cast<double>(h.Percentile(p));
    EXPECT_NEAR(approx, exact, exact * 0.05) << "percentile " << p;
  }
}

TEST(HistogramTest, PercentileMonotoneInP) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBelow(1'000'000)));
  }
  int64_t prev = 0;
  for (double p = 0; p <= 100.0; p += 2.5) {
    const int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, PercentileBoundedByMinMax) {
  Histogram h;
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBelow(1'000'000'000)));
  }
  EXPECT_GE(h.Percentile(0), h.min());
  EXPECT_LE(h.Percentile(100), h.max());
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1'000'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1'000'000);
  EXPECT_NEAR(a.Mean(), (10.0 + 20.0 + 1'000'000.0) / 3.0, 0.001);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, VeryLargeValuesDoNotOverflow) {
  Histogram h;
  h.Record(int64_t{1} << 44);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Percentile(100), 0);
}

TEST(TimeSeriesTest, RecordsIntoCorrectWindows) {
  TimeSeries ts(0, 100);
  ts.Record(10, 5);
  ts.Record(99, 7);
  ts.Record(100, 11);
  ts.Record(350, 1);
  ASSERT_EQ(ts.num_windows(), 4u);
  EXPECT_EQ(ts.WindowCount(0), 2u);
  EXPECT_EQ(ts.WindowSum(0), 12);
  EXPECT_EQ(ts.WindowCount(1), 1u);
  EXPECT_EQ(ts.WindowCount(2), 0u);
  EXPECT_EQ(ts.WindowCount(3), 1u);
}

TEST(TimeSeriesTest, OriginOffset) {
  TimeSeries ts(1000, 100);
  ts.Record(500, 5);  // before origin: ignored
  ts.Record(1000, 3);
  ts.Record(1150, 4);
  ASSERT_EQ(ts.num_windows(), 2u);
  EXPECT_EQ(ts.WindowStart(0), 1000);
  EXPECT_EQ(ts.WindowStart(1), 1100);
  EXPECT_EQ(ts.WindowCount(0), 1u);
}

TEST(TimeSeriesTest, CountsDroppedEarlySamples) {
  TimeSeries ts(1000, 100);
  EXPECT_EQ(ts.dropped_early(), 0u);
  ts.Record(500, 5);
  ts.Record(999, 5);
  ts.Record(1000, 5);  // in range: not a drop
  EXPECT_EQ(ts.dropped_early(), 2u);
  EXPECT_EQ(ts.num_windows(), 1u);
  EXPECT_EQ(ts.WindowCount(0), 1u);
}

TEST(TimeSeriesTest, RatePerSecond) {
  TimeSeries ts(0, kSecond / 10);  // 100ms windows
  ts.Record(0, 1000);
  ts.Record(50 * kMillisecond, 1000);
  EXPECT_DOUBLE_EQ(ts.WindowRatePerSec(0), 20000.0);
}

TEST(TimeSeriesTest, WindowMean) {
  TimeSeries ts(0, 100);
  ts.Record(0, 10);
  ts.Record(1, 30);
  EXPECT_DOUBLE_EQ(ts.WindowMean(0), 20.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.AddRow({"xxxxxx", "1"});
  const std::string out = t.Render();
  // Header, separator and one row.
  EXPECT_NE(out.find("a       long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx  1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.Render().find("1"), std::string::npos);
}

TEST(FormatTest, Formatters) {
  EXPECT_EQ(FormatMs(12'345'678.0), "12.346ms");
  EXPECT_EQ(FormatUs(12'345.0), "12.3us");
  EXPECT_EQ(FormatCount(1'234.0), "1.2K");
  EXPECT_EQ(FormatCount(12'345'678.0), "12.35M");
  EXPECT_EQ(FormatCount(12.0), "12");
  EXPECT_EQ(FormatRatio(3.1415), "3.14x");
  EXPECT_EQ(FormatPercent(0.123), "12.3%");
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(FormatMiBps(1024.0 * 1024.0 * 2.5), "2.5MiB/s");
}

}  // namespace
}  // namespace daredevil
