// ddanalyze CLI. Typical runs:
//   ddanalyze --root .                      # architecture check + ratchet
//   ddanalyze --root . --write-baseline     # refresh the ratchet baseline
//   ddanalyze --root . --md                 # markdown summary (CI step page)
//   ddanalyze --list-passes                 # what runs, in order
//   ddanalyze --root tests/ddanalyze_fixtures/layer_bad   # fixture corpus
// Exit code 0 = clean, 1 = findings or ratchet regression, 2 = usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "tools/ddanalyze/analyzer.h"

namespace {

// Full escaping (including \u00XX for control characters) lives in
// ddanalyze::JsonEscape so the unit tests can cover it; findings routinely
// quote source text, and a raw tab or CR in a message is invalid JSON.
void PrintJsonString(std::ostream& out, const std::string& s) {
  out << '"' << ddanalyze::JsonEscape(s) << '"';
}

// Markdown summary for the CI step page: per-pass table (what found what,
// how long it took) and the ratchet-vs-baseline delta table.
void PrintMarkdown(std::ostream& out, const ddanalyze::AnalysisResult& result,
                   const std::map<std::string, int>& baseline,
                   bool have_baseline,
                   const std::vector<std::string>& ratchet_violations) {
  out << "### ddanalyze\n\n";
  out << "| pass | wall ms | errors | ratchet sites |\n";
  out << "|---|---:|---:|---:|\n";
  char ms[32];
  for (const ddanalyze::PassStat& p : result.passes) {
    std::snprintf(ms, sizeof(ms), "%.2f", p.wall_ms);
    out << "| " << p.name << " | " << ms << " | " << p.findings << " | "
        << p.ratchet_sites << " |\n";
  }
  out << "\n";
  if (!result.errors.empty()) {
    out << "**" << result.errors.size() << " hard error(s):**\n\n";
    for (const auto& f : result.errors) {
      out << "- `" << f.file << ":" << f.line << "` [" << f.rule << "] "
          << f.message << "\n";
    }
    out << "\n";
  }
  if (!result.ratchet_counts.empty() || have_baseline) {
    out << "**Ratchet vs baseline** (counts may only fall):\n\n";
    out << "| key | baseline | current | delta |\n";
    out << "|---|---:|---:|---:|\n";
    std::map<std::string, int> keys = result.ratchet_counts;
    for (const auto& [key, count] : baseline) {
      keys.emplace(key, 0);  // burned-down keys still show their headroom
    }
    for (const auto& [key, _] : keys) {
      auto cit = result.ratchet_counts.find(key);
      auto bit = baseline.find(key);
      const int cur = cit == result.ratchet_counts.end() ? 0 : cit->second;
      const int base = bit == baseline.end() ? 0 : bit->second;
      const int delta = cur - base;
      out << "| `" << key << "` | " << base << " | " << cur << " | "
          << (delta > 0 ? "**+" + std::to_string(delta) + "**"
                        : std::to_string(delta))
          << " |\n";
    }
    out << "\n";
  }
  if (!ratchet_violations.empty()) {
    out << "**Ratchet regressions:**\n\n";
    for (const auto& v : ratchet_violations) {
      out << "- " << v << "\n";
    }
    out << "\n";
  }
  out << (result.errors.empty() && ratchet_violations.empty()
              ? "Result: **clean**\n"
              : "Result: **FAIL**\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool write_baseline = false;
  bool json = false;
  bool md = false;
  bool no_ratchet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--md") {
      md = true;
    } else if (arg == "--no-ratchet") {
      no_ratchet = true;
    } else if (arg == "--list-passes") {
      for (const auto& [name, desc] : ddanalyze::ListPasses()) {
        std::printf("%-18s %s\n", name.c_str(), desc.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: ddanalyze [--root DIR] [--baseline FILE] "
          "[--write-baseline] [--json] [--md] [--no-ratchet] "
          "[--list-passes]");
      return 0;
    } else {
      std::fprintf(stderr, "ddanalyze: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_path.empty()) {
    baseline_path = root + "/tools/ddanalyze-baseline.txt";
  }

  const ddanalyze::AnalysisResult result = ddanalyze::Analyze(root);

  if (write_baseline) {
    std::ofstream out(baseline_path);
    if (!out) {
      std::fprintf(stderr, "ddanalyze: cannot write '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    out << ddanalyze::FormatBaseline(result.ratchet_counts);
    std::printf("ddanalyze: wrote %zu ratchet counters to %s\n",
                result.ratchet_counts.size(), baseline_path.c_str());
  }

  std::map<std::string, int> baseline;
  bool have_baseline = false;
  std::vector<std::string> ratchet_violations;
  if (!no_ratchet && !write_baseline) {
    std::string err;
    baseline = ddanalyze::ReadBaseline(baseline_path, &err);
    have_baseline = err.empty();
    if (have_baseline) {
      ratchet_violations =
          ddanalyze::CompareToBaseline(result.ratchet_counts, baseline);
    }
    // A missing baseline (fixture corpora, fresh checkouts) skips the
    // ratchet rather than failing: the counts are still reported below.
  }

  if (json) {
    std::ostream& out = std::cout;
    out << "{\"findings\":[";
    bool first = true;
    for (const auto& f : result.errors) {
      if (!first) out << ",";
      first = false;
      out << "{\"rule\":";
      PrintJsonString(out, f.rule);
      out << ",\"file\":";
      PrintJsonString(out, f.file);
      out << ",\"line\":" << f.line << ",\"message\":";
      PrintJsonString(out, f.message);
      out << "}";
    }
    out << "],\"passes\":[";
    first = true;
    char ms[32];
    for (const auto& p : result.passes) {
      if (!first) out << ",";
      first = false;
      std::snprintf(ms, sizeof(ms), "%.3f", p.wall_ms);
      out << "{\"name\":";
      PrintJsonString(out, p.name);
      out << ",\"wall_ms\":" << ms << ",\"findings\":" << p.findings
          << ",\"ratchet_sites\":" << p.ratchet_sites << "}";
    }
    out << "],\"ratchet\":{";
    first = true;
    for (const auto& [key, count] : result.ratchet_counts) {
      if (!first) out << ",";
      first = false;
      PrintJsonString(out, key);
      out << ":" << count;
    }
    out << "},\"ratchet_violations\":" << ratchet_violations.size() << "}\n";
  } else if (md) {
    PrintMarkdown(std::cout, result, baseline, have_baseline,
                  ratchet_violations);
  } else {
    for (const auto& f : result.errors) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    for (const auto& v : ratchet_violations) {
      std::printf("ratchet regression: %s\n", v.c_str());
    }
    for (const auto& p : result.passes) {
      std::printf("pass %-18s %8.2f ms  %3d error(s)  %3d ratchet site(s)\n",
                  p.name.c_str(), p.wall_ms, p.findings, p.ratchet_sites);
    }
    std::printf(
        "ddanalyze: %zu finding(s), %zu ratchet counter(s), %zu ratchet "
        "regression(s)\n",
        result.errors.size(), result.ratchet_counts.size(),
        ratchet_violations.size());
  }

  return result.errors.empty() && ratchet_violations.empty() ? 0 : 1;
}
