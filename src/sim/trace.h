// Lightweight tracepoint infrastructure (the simulation's analogue of kernel
// tracepoints/blktrace): components record fixed-size events into a bounded
// ring buffer that tools dump as CSV. Recording is a no-op when no TraceLog
// is attached, so the hot paths stay clean.
#ifndef DAREDEVIL_SRC_SIM_TRACE_H_
#define DAREDEVIL_SRC_SIM_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace daredevil {

// When adding a category: append it before kOther (kOther stays last so the
// static_asserts below pin the enum size), add its name to
// kTraceCategoryNames at the same index, and keep kNumTraceCategories in
// sync. ddlint's trace-categories rule cross-checks all three.
enum class TraceCategory : int {
  kSubmit = 0,   // request entered the block layer
  kRoute,        // routing decision (request -> NSQ)
  kDoorbell,     // NSQ doorbell rung
  kFetchStart,   // controller began fetching a command (left the NSQ head)
  kFetch,        // controller fetched a command
  kFlashStart,   // first page of a command started on a flash chip
  kFlashEnd,     // last page of a command finished flash service
  kComplete,     // command completion posted to an NCQ
  kIrq,          // interrupt raised
  kDeliver,      // completion delivered to the tenant
  kSchedule,     // nqreg NQ-scheduling decision
  kMigrate,      // tenant moved cores
  kFaultInject,  // fault layer fired (a = hazard site, b = FaultKind)
  kTimeout,      // host watchdog expired for a request
  kRetry,        // stack re-submitted a request after abort/error
  kAbort,        // host aborted an outstanding command
  kOther,
};
inline constexpr int kNumTraceCategories = 17;

// One name per category, indexed by the enum value. A missing trailing entry
// would be a null pointer, which the static_assert below rejects at compile
// time (the per-category count array in TraceLog indexes by enum value, so a
// name/enum mismatch would silently misreport counts).
inline constexpr std::array<const char*, kNumTraceCategories>
    kTraceCategoryNames = {
        "submit",     "route",     "doorbell", "fetch-start", "fetch",
        "flash-start", "flash-end", "complete", "irq",         "deliver",
        "schedule",   "migrate",   "fault",    "timeout",     "retry",
        "abort",      "other",
};

static_assert(static_cast<int>(TraceCategory::kOther) + 1 ==
                  kNumTraceCategories,
              "kNumTraceCategories out of sync with the TraceCategory enum "
              "(kOther must stay the last enumerator)");

namespace trace_internal {
constexpr bool AllCategoryNamesPresent() {
  for (const char* name : kTraceCategoryNames) {
    if (name == nullptr || name[0] == '\0') {
      return false;
    }
  }
  return true;
}
}  // namespace trace_internal

static_assert(trace_internal::AllCategoryNamesPresent(),
              "every TraceCategory needs a non-empty kTraceCategoryNames "
              "entry at its enum index");

const char* TraceCategoryName(TraceCategory c);

struct TraceEvent {
  Tick at = 0;
  TraceCategory category = TraceCategory::kOther;
  uint64_t id = 0;  // request/command/tenant id
  int64_t a = 0;    // category-specific (e.g. NSQ id)
  int64_t b = 0;    // category-specific (e.g. core id)
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 1 << 16);

  void Record(Tick at, TraceCategory category, uint64_t id = 0, int64_t a = 0,
              int64_t b = 0);

  // Number of retained events (oldest are dropped once full).
  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const { return total_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t CountOf(TraceCategory category) const {
    return counts_[static_cast<int>(category)];
  }

  // Events in chronological order.
  std::vector<TraceEvent> Events() const;

  // "time_ns,category,id,a,b" rows with a header line.
  std::string ToCsv() const;

  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;  // ring
  size_t head_ = 0;                 // next write slot when full
  bool full_ = false;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
  uint64_t counts_[kNumTraceCategories] = {0};
};

}  // namespace daredevil

#endif  // DAREDEVIL_SRC_SIM_TRACE_H_
