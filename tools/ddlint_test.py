#!/usr/bin/env python3
"""Regression tests for ddlint's waiver and ratchet plumbing.

Covers the file-waiver trailing-`*` prefix match (a bare path must match
exactly; `dir/*` must match the prefix and nothing else) and the shared
baseline format used by both ddlint and ddanalyze.
"""

import importlib.util
import os
import sys
import tempfile
import unittest

_DDLINT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "ddlint.py")
_spec = importlib.util.spec_from_file_location("ddlint", _DDLINT_PATH)
ddlint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(ddlint)


def _finding(path, rule="unordered-iter"):
    return ddlint.Finding(path, 1, rule, "test finding")


class FileWaiverPrefixTest(unittest.TestCase):
    def test_exact_path_matches_only_itself(self):
        hit = _finding("src/apps/kvstore.h")
        miss = _finding("src/apps/kvstore.h.bak")
        ddlint.apply_file_waivers(
            [hit, miss], [("unordered-iter", "src/apps/kvstore.h", "reason")])
        self.assertTrue(hit.waived)
        self.assertFalse(miss.waived)

    def test_trailing_star_is_a_prefix_match(self):
        inside = _finding("src/apps/kvstore.h")
        nested = _finding("src/apps/deep/nested.h")
        outside = _finding("src/stack/kvstore.h")
        ddlint.apply_file_waivers(
            [inside, nested, outside],
            [("unordered-iter", "src/apps/*", "reason")])
        self.assertTrue(inside.waived)
        self.assertTrue(nested.waived)
        self.assertFalse(outside.waived)

    def test_star_does_not_cross_rule_boundaries(self):
        finding = _finding("src/apps/kvstore.h", rule="page-literal")
        ddlint.apply_file_waivers(
            [finding], [("unordered-iter", "src/apps/*", "reason")])
        self.assertFalse(finding.waived)

    def test_bare_star_waives_everything_for_the_rule(self):
        finding = _finding("tests/foo_test.cc")
        ddlint.apply_file_waivers([finding], [("unordered-iter", "*", "r")])
        self.assertTrue(finding.waived)

    def test_already_waived_inline_keeps_its_reason(self):
        finding = _finding("src/apps/kvstore.h")
        finding.waived = True
        finding.waiver_reason = "inline reason"
        ddlint.apply_file_waivers(
            [finding], [("unordered-iter", "src/apps/*", "file reason")])
        self.assertEqual(finding.waiver_reason, "inline reason")


class EngineAllocRuleTest(unittest.TestCase):
    """The engine-alloc rule guards src/sim/engine/'s zero-allocation core."""

    def _check(self, source, rel="src/sim/engine/fake.cc"):
        findings = []
        with tempfile.NamedTemporaryFile("w", suffix=".cc",
                                         delete=False) as f:
            f.write(source)
            path = f.name
        try:
            ddlint.check_file(path, rel, findings)
        finally:
            os.unlink(path)
        return [x for x in findings if x.rule == "engine-alloc"]

    def test_std_function_is_flagged(self):
        hits = self._check("std::function<void()> cb;\n")
        self.assertEqual(len(hits), 1)
        self.assertFalse(hits[0].waived)

    def test_heap_helpers_and_malloc_are_flagged(self):
        source = ("auto p = std::make_unique<int>(1);\n"
                  "auto q = std::make_shared<int>(2);\n"
                  "void* r = malloc(16);\n")
        self.assertEqual(len(self._check(source)), 3)

    def test_non_placement_new_is_flagged_but_placement_new_is_not(self):
        self.assertEqual(len(self._check("int* p = new int;\n")), 1)
        self.assertEqual(
            self._check("::new (static_cast<void*>(buf)) D(std::move(f));\n"),
            [])

    def test_include_new_header_is_not_an_allocation(self):
        self.assertEqual(self._check("#include <new>\n"), [])

    def test_inline_waiver_token_applies(self):
        hits = self._check(
            "slabs_.push_back(std::make_unique<EventRecord[]>(kSlabSize));"
            "  // ddlint: enginealloc-ok(slab growth)\n")
        self.assertEqual(len(hits), 1)
        self.assertTrue(hits[0].waived)

    def test_rule_is_scoped_to_the_engine_dir(self):
        self.assertEqual(
            self._check("std::function<void()> cb;\n", rel="src/sim/cpu.cc"),
            [])


class LocalStaticRuleTest(unittest.TestCase):
    """local-static bans mutable function-local statics and thread_local in
    src/ — the fast backstop for ddanalyze's global-state pass."""

    def _check(self, source, rel="src/sim/fake.cc"):
        findings = []
        with tempfile.NamedTemporaryFile("w", suffix=".cc",
                                         delete=False) as f:
            f.write(source)
            path = f.name
        try:
            ddlint.check_file(path, rel, findings)
        finally:
            os.unlink(path)
        return [x for x in findings if x.rule == "local-static"]

    def test_mutable_local_static_is_flagged(self):
        hits = self._check("int Next() {\n  static int next = 0;\n"
                           "  return ++next;\n}\n")
        self.assertEqual(len(hits), 1)
        self.assertFalse(hits[0].waived)

    def test_thread_local_is_flagged(self):
        hits = self._check("void F() {\n  thread_local int depth = 0;\n}\n")
        # thread_local matches; the static-declaration pattern must not
        # double-report the same line.
        self.assertEqual(len(hits), 1)

    def test_const_and_constexpr_statics_are_fine(self):
        source = ("int Lookup(int i) {\n"
                  "  static const int kSmall[] = {1, 2, 3};\n"
                  "  static constexpr int kBase = 7;\n"
                  "  static inline const int kAlso = 9;\n"
                  "  return kSmall[i] + kBase + kAlso;\n"
                  "}\n")
        self.assertEqual(self._check(source), [])

    def test_static_member_functions_are_fine(self):
        source = ("struct S {\n"
                  "  static int BucketIndex(long value);\n"
                  "  static void Invoke(void* storage) { }\n"
                  "};\n")
        self.assertEqual(self._check(source), [])

    def test_mutable_class_static_data_is_flagged(self):
        hits = self._check("struct S {\n  static int instances_;\n};\n")
        self.assertEqual(len(hits), 1)

    def test_inline_waiver_token_applies(self):
        hits = self._check(
            "int Next() {\n"
            "  static int next = 0;"
            "  // ddlint: localstatic-ok(single-threaded tool)\n"
            "  return ++next;\n}\n")
        self.assertEqual(len(hits), 1)
        self.assertTrue(hits[0].waived)

    def test_rule_is_scoped_to_src(self):
        self.assertEqual(
            self._check("int F() {\n  static int n = 0;\n  return n;\n}\n",
                        rel="tests/fake_test.cc"),
            [])


class RatchetBaselineTest(unittest.TestCase):
    def test_waived_counts_group_by_rule(self):
        findings = [_finding("a.h"), _finding("b.h"),
                    _finding("c.h", rule="page-literal")]
        for f in findings:
            f.waived = True
        findings.append(_finding("d.h"))  # active: not counted
        self.assertEqual(ddlint.waived_counts(findings),
                         {"waived.unordered-iter": 2, "waived.page-literal": 1})

    def test_baseline_round_trips_through_the_shared_format(self):
        counts = {"waived.unordered-iter": 2, "waived.page-literal": 1}
        text = ddlint.format_baseline(counts)
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write(text)
            path = f.name
        try:
            self.assertEqual(ddlint.read_baseline(path), counts)
        finally:
            os.unlink(path)

    def test_missing_baseline_reads_as_none(self):
        self.assertIsNone(ddlint.read_baseline("/nonexistent/baseline.txt"))

    def test_compare_flags_increases_only(self):
        baseline = {"waived.unordered-iter": 2}
        self.assertEqual(
            ddlint.compare_to_baseline({"waived.unordered-iter": 2}, baseline),
            [])
        self.assertEqual(
            ddlint.compare_to_baseline({"waived.unordered-iter": 1}, baseline),
            [])
        self.assertEqual(
            len(ddlint.compare_to_baseline({"waived.unordered-iter": 3},
                                           baseline)), 1)
        self.assertEqual(
            len(ddlint.compare_to_baseline({"waived.raw-rng": 1}, baseline)),
            1)


if __name__ == "__main__":
    sys.exit(unittest.main())
