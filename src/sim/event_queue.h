// Ordered event queue for the discrete-event simulator.
#ifndef DAREDEVIL_SRC_SIM_EVENT_QUEUE_H_
#define DAREDEVIL_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/clock.h"

namespace daredevil {

// A scheduled callback. Events with equal timestamps fire in insertion order
// (the sequence number breaks ties), which keeps simulations deterministic.
struct Event {
  Tick at = 0;
  uint64_t seq = 0;
  std::function<void()> fn;
};

class EventQueue {
 public:
  void Push(Tick at, std::function<void()> fn) {
    heap_.push(HeapEntry{at, next_seq_++, std::move(fn)});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  Tick NextTime() const { return heap_.top().at; }

  // Removes and returns the earliest event. Requires !empty().
  Event PopNext() {
    // std::priority_queue::top() is const; the move is safe because the entry
    // is popped immediately after.
    HeapEntry entry = std::move(const_cast<HeapEntry&>(heap_.top()));
    heap_.pop();
    return Event{entry.at, entry.seq, std::move(entry.fn)};
  }

 private:
  struct HeapEntry {
    Tick at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace daredevil

#endif  // DAREDEVIL_SRC_SIM_EVENT_QUEUE_H_
