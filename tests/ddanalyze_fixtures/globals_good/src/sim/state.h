// GOOD: immutable static storage in all its spellings, plus one waived
// legacy knob. None of this is flagged: shared-immutable is shard-safe.
#pragma once

constexpr int kMaxShards = 64;
const char* const kName = "daredevil";
inline constexpr double kRatio = 0.5;

namespace detail {
constexpr long kTable[] = {1, 2, 3};
}  // namespace detail

struct Table {
  static constexpr int kWidth = 4;
  static const int kDepth;
  int per_instance = 0;
};

inline int Lookup(int i) {
  static const int kSmall[] = {1, 2, 3};
  return kSmall[i];
}

inline int Twice(int x) { return 2 * x; }

int g_legacy_knob = 1;  // ddanalyze: global-ok(burning down under ROADMAP item 2)
