// Simulation-owned state for the taint_bad fixture.
#pragma once

class Simulator {
 public:
  void ScheduleAt(long when);      // non-const: mutates the event queue
  long now() const;
};
