// A small C++ lexer for ddanalyze (tools/ddanalyze/README in DESIGN.md §7).
//
// It is not a compiler front end: it produces identifier / number / punctuator
// tokens with line numbers, strips comments and string literals, records
// preprocessor directives (so the include-graph builder can read them), and
// extracts `// ddanalyze: <rule>-ok(reason)` waiver comments. That is enough
// for the token-level architecture rules and keeps the tool dependency-free.
#ifndef DAREDEVIL_TOOLS_DDANALYZE_LEXER_H_
#define DAREDEVIL_TOOLS_DDANALYZE_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ddanalyze {

enum class TokKind {
  kIdent,  // identifiers and keywords
  kNumber, // integer / floating literals (text preserved)
  kPunct,  // operators and punctuation, multi-char ops kept whole
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

// One `#include "..."` directive (angle-bracket includes are recorded with
// angled=true so the layer rule can ignore system headers).
struct IncludeDirective {
  std::string path;
  int line = 0;
  bool angled = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  // line -> waiver rule names ("escape", "layer", "tick") present on it.
  std::map<int, std::set<std::string>> waivers;

  bool HasWaiver(int line, const std::string& rule) const {
    auto it = waivers.find(line);
    return it != waivers.end() && it->second.count(rule) > 0;
  }
};

// Tokenizes `content`. Never fails: unrecognized bytes are skipped.
LexedFile Lex(const std::string& content);

}  // namespace ddanalyze

#endif  // DAREDEVIL_TOOLS_DDANALYZE_LEXER_H_
