#include "src/stack/storage_stack.h"

#include "src/stats/trace_export.h"

namespace daredevil {

std::string StorageStack::NsqTrackLabel(int nsq) const {
  return "NSQ " + std::to_string(nsq);
}

int StorageStack::PendingDoorbells() const {
  int pending = 0;
  for (const DoorbellState& db : doorbells_) {
    pending += db.pending;
  }
  return pending;
}

StorageStack::StorageStack(Machine* machine, Device* device, const StackCosts& costs)
    : machine_(machine), device_(device), costs_(costs) {
  doorbells_.resize(static_cast<size_t>(device->nr_nsq()));
  AssignIrqCoresRoundRobin();
  // The kernel default completes requests in (mild) batches (§2.1).
  for (int i = 0; i < device_->nr_ncq(); ++i) {
    device_->ncq(i).SetCoalescing(device_->config().driver_coalesce_count,
                                  device_->config().driver_coalesce_timeout);
  }
  device_->SetIrqHandler([this](int ncq_id) { OnDeviceIrq(ncq_id); });
}

void StorageStack::OnTenantStart(Tenant* tenant) { (void)tenant; }
void StorageStack::OnTenantExit(Tenant* tenant) { (void)tenant; }
void StorageStack::OnIoniceChange(Tenant* tenant) { (void)tenant; }
void StorageStack::OnTenantMigrated(Tenant* tenant, int old_core) {
  (void)tenant;
  (void)old_core;
}

void StorageStack::RegisterMetrics(MetricsRegistry* registry) const {
  const StorageStack* s = this;
  registry->RegisterGauge("stack.requests_submitted", [s]() {
    return static_cast<double>(s->requests_submitted());
  });
  registry->RegisterGauge("stack.requests_completed", [s]() {
    return static_cast<double>(s->requests_completed());
  });
  registry->RegisterGauge("stack.requeues", [s]() {
    return static_cast<double>(s->requeues());
  });
  registry->RegisterGauge("stack.cross_core_completions", [s]() {
    return static_cast<double>(s->cross_core_completions());
  });
  registry->RegisterGauge("stack.lock_wait_ns", [s]() {
    return static_cast<double>(s->submission_lock_wait_ns().ticks());
  });
  registry->RegisterGauge("stack.requests_split", [s]() {
    return static_cast<double>(s->requests_split());
  });
  registry->RegisterGauge("stack.scheduler_queued", [s]() {
    return static_cast<double>(s->scheduler_queued());
  });
  registry->RegisterGauge("stack.doorbells_rung", [s]() {
    return static_cast<double>(s->doorbells_rung());
  });
  registry->RegisterGauge("stack.doorbell_batch_mean", [s]() {
    return s->doorbells_rung() > 0
               ? static_cast<double>(s->doorbell_rqs_rung()) /
                     static_cast<double>(s->doorbells_rung())
               : 0.0;
  });
  // Registered only when a fault plan is armed: the metrics snapshot is part
  // of the fingerprint, and fault-free runs must hash identically to the
  // pre-fault simulator.
  if (watchdog_enabled_) {
    registry->RegisterGauge("stack.faults.timeouts", [s]() {
      return static_cast<double>(s->timeouts());
    });
    registry->RegisterGauge("stack.faults.retries", [s]() {
      return static_cast<double>(s->fault_retries());
    });
    registry->RegisterGauge("stack.faults.aborts", [s]() {
      return static_cast<double>(s->aborts());
    });
    registry->RegisterGauge("stack.faults.failed_requests", [s]() {
      return static_cast<double>(s->failed_requests());
    });
    registry->RegisterGauge("stack.faults.error_completions", [s]() {
      return static_cast<double>(s->error_completions());
    });
    registry->RegisterGauge("stack.faults.watchdog_recovered", [s]() {
      return static_cast<double>(s->watchdog_recovered());
    });
    registry->RegisterGauge("stack.faults.timeout_latency_ns", [s]() {
      return static_cast<double>(s->timeout_latency_ns().ticks());
    });
  }
}

void StorageStack::AssignIrqCoresRoundRobin() {
  for (int i = 0; i < device_->nr_ncq(); ++i) {
    device_->ncq(i).set_irq_core(CoreId{i % machine_->num_cores()});
  }
}

void StorageStack::SetTraceLog(TraceLog* trace) {
  trace_ = trace;
  device_->SetTraceLog(trace);
}

void StorageStack::EnableIoScheduler(IoSchedulerKind kind, int dispatch_window) {
  sched_kind_ = kind;
  sched_window_ = dispatch_window > 0 ? dispatch_window : 1;
  sched_.clear();
  if (kind == IoSchedulerKind::kNone) {
    return;
  }
  sched_.resize(static_cast<size_t>(device_->nr_nsq()));
  for (auto& state : sched_) {
    state.sched = MakeIoScheduler(kind);
  }
}

void StorageStack::SetDoorbellPolicy(int nsq, const DoorbellPolicy& policy) {
  doorbells_[static_cast<size_t>(nsq)].policy = policy;
}

void StorageStack::SetCompletionPath(int ncq, bool per_request) {
  if (per_request) {
    device_->ncq(ncq).SetCoalescing(1, device_->config().coalesce_timeout);
  } else {
    device_->ncq(ncq).SetCoalescing(device_->config().coalesce_count,
                                    device_->config().coalesce_timeout);
  }
}

void StorageStack::SubmitAsync(Request* rq) {
  if (split_threshold_ > 0 && rq->pages > split_threshold_) {
    SubmitSplit(rq);
    return;
  }
  // In-flight uniqueness: a request must complete before its id is reused
  // (split parents never reach the device and are tracked via children).
  DD_CHECK(lifecycle_.OnSubmit(*rq, machine_->now()))
      << lifecycle_.last_violation();
  const TickDuration work = costs_.submit_kernel +
                            static_cast<Tick>(rq->pages) * costs_.per_page_kernel +
                            RoutingCost(*rq);
  machine_->Post(rq->submit_core, WorkLevel::kKernel, work, [this, rq]() {
    rq->submit_time = machine_->now();
    if (trace_ != nullptr) {
      trace_->Record(machine_->now(), TraceCategory::kSubmit, rq->id,
                     rq->submit_core, rq->pages);
    }
    const int nsq = RouteRequest(rq);
    DD_CHECK(nsq >= 0 && nsq < device_->nr_nsq())
        << "rq=" << rq->id << " routed to NSQ " << nsq << " of "
        << device_->nr_nsq() << " at tick " << machine_->now();
    rq->routed_nsq = nsq;
    if (trace_ != nullptr) {
      trace_->Record(machine_->now(), TraceCategory::kRoute, rq->id, nsq,
                     rq->tenant != nullptr && rq->tenant->IsLatencySensitive() ? 1
                                                                               : 0);
    }
    if (sched_kind_ != IoSchedulerKind::kNone) {
      // I/O-scheduler path: queue in the per-NSQ scheduler; the dispatch
      // window pulls requests out in scheduler order.
      DispatchOrSchedule(rq, nsq);
      return;
    }
    const TickDuration wait = device_->AcquireSubmitLock(
        nsq, costs_.nsq_lock_hold, CoreId{rq->submit_core},
        costs_.nsq_remote_access);
    submission_lock_wait_ns_ += wait;
    if (wait > kZeroDuration) {
      // Spin for our turn at the NSQ tail (cross-core contention, §5.1).
      machine_->Post(rq->submit_core, WorkLevel::kKernel, wait,
                     [this, rq, nsq]() { EnqueueLocked(rq, nsq); });
    } else {
      EnqueueLocked(rq, nsq);
    }
  });
}

void StorageStack::DispatchOrSchedule(Request* rq, int nsq) {
  SchedState& state = sched_[static_cast<size_t>(nsq)];
  state.sched->Add(rq, machine_->now());
  ++sched_queued_;
  PumpScheduler(nsq);
}

void StorageStack::PumpScheduler(int nsq) {
  SchedState& state = sched_[static_cast<size_t>(nsq)];
  while (state.outstanding < sched_window_) {
    Request* rq = state.sched->Dispatch(machine_->now());
    if (rq == nullptr) {
      return;
    }
    ++state.outstanding;
    const TickDuration wait = device_->AcquireSubmitLock(
        nsq, costs_.nsq_lock_hold, CoreId{rq->submit_core},
        costs_.nsq_remote_access);
    submission_lock_wait_ns_ += wait;
    EnqueueLocked(rq, nsq);
  }
}

void StorageStack::SubmitSplit(Request* rq) {
  // Decompose into <= split_threshold_ chunks; each chunk traverses the full
  // submission path. The parent completes when the last chunk does.
  ++requests_split_;
  auto job = std::make_unique<SplitJob>();
  job->parent = rq;
  SplitJob* job_ptr = job.get();
  uint64_t child_seq = 0;
  for (uint32_t offset = 0; offset < rq->pages; offset += split_threshold_) {
    auto child = std::make_unique<Request>();
    // Derive a collision-free child id: parent ids occupy the high bits
    // (tenant << 32 | counter), so shifting leaves room for the chunk index.
    child->id = (rq->id << 8) | (++child_seq);
    DD_CHECK(child_seq < 256) << "rq=" << rq->id << " split into too many chunks";
    child->tenant = rq->tenant;
    child->nsid = rq->nsid;
    child->lba = rq->lba + offset;
    child->pages = std::min(split_threshold_, rq->pages - offset);
    child->is_write = rq->is_write;
    child->is_sync = rq->is_sync;
    child->is_meta = rq->is_meta;
    child->is_fua = rq->is_fua;
    child->submit_core = rq->submit_core;
    child->issue_time = rq->issue_time;
    child->on_complete = [this, job_ptr](Request* done_child) {
      Request* parent = job_ptr->parent;
      parent->routed_nsq = done_child->routed_nsq;
      if (done_child->status != IoStatus::kOk) {
        // Any failed chunk fails the parent (first failure wins).
        if (parent->status == IoStatus::kOk) {
          parent->status = done_child->status;
        }
      }
      if (--job_ptr->remaining == 0) {
        parent->complete_time = machine_->now();
        // Defer the job teardown one event: this closure is owned by one of
        // the job's children, so destroying the job here would destroy the
        // currently-executing function object.
        const uint64_t parent_id = parent->id;
        machine_->sim().After(kZeroDuration,
                              [this, parent_id]() { splits_.erase(parent_id); });
        if (parent->on_complete) {
          parent->on_complete(parent);
        }
      }
    };
    job->children.push_back(std::move(child));
  }
  job->remaining = static_cast<int>(job->children.size());
  auto [it, inserted] = splits_.emplace(rq->id, std::move(job));
  DD_CHECK(inserted) << "duplicate in-flight request id " << rq->id
                     << " in split path at tick " << machine_->now();
  for (auto& child : it->second->children) {
    SubmitAsync(child.get());
  }
}

void StorageStack::EnqueueLocked(Request* rq, int nsq) {
  NvmeCommand cmd;
  // Retried attempts carry a fresh cid (bit 63 set): the aborted attempt's
  // cid may still live in the device as a tombstone awaiting its CQE.
  cmd.cid = rq->attempt_cid != 0 ? rq->attempt_cid : rq->id;
  cmd.nsid = rq->nsid;
  cmd.lba = rq->lba;
  cmd.pages = rq->pages;
  cmd.is_write = rq->is_write;
  cmd.is_zone_reset = rq->is_zone_reset;
  cmd.is_flush = rq->is_flush;
  cmd.fua = rq->is_fua;
  cmd.cookie = rq;

  if (!device_->Enqueue(nsq, cmd)) {
    // Ring full: back off and retry (blk-mq's BLK_STS_RESOURCE requeue).
    ++requeues_;
    machine_->sim().After(costs_.requeue_backoff, [this, rq, nsq]() {
      machine_->Post(rq->submit_core, WorkLevel::kKernel,
                     TickDuration{costs_.submit_kernel.ticks() / 2},
                     [this, rq, nsq]() { EnqueueLocked(rq, nsq); });
    });
    return;
  }
  rq->nsq_enqueue_time = machine_->now();
  ++requests_submitted_;
  if (watchdog_enabled_) {
    ArmWatchdog(rq);
  }
  AfterEnqueue(nsq, rq);
  RingOrBatchDoorbell(nsq);
}

void StorageStack::RingOrBatchDoorbell(int nsq) {
  // Doorbell tails (cumulative submissions made visible) must be monotone.
  DD_CHECK(lifecycle_.OnDoorbell(nsq, device_->nsq(nsq).submitted_rqs()))
      << lifecycle_.last_violation();
  DoorbellState& db = doorbells_[static_cast<size_t>(nsq)];
  if (!db.policy.batched) {
    if (trace_ != nullptr) {
      trace_->Record(machine_->now(), TraceCategory::kDoorbell, 0, nsq, 1);
    }
    ++doorbells_rung_;
    ++doorbell_rqs_rung_;
    device_->RingDoorbell(nsq);
    return;
  }
  // Postpone notifying the controller until a batch accumulated (§5.3,
  // SLA-aware submission dispatching for low-priority NSQs).
  ++db.pending;
  if (db.pending >= db.policy.batch) {
    if (trace_ != nullptr) {
      trace_->Record(machine_->now(), TraceCategory::kDoorbell, 0, nsq,
                     db.pending);
    }
    ++doorbells_rung_;
    doorbell_rqs_rung_ += static_cast<uint64_t>(db.pending);
    db.pending = 0;
    device_->RingDoorbell(nsq);
    return;
  }
  if (!db.timer_armed) {
    db.timer_armed = true;
    machine_->sim().After(db.policy.timeout, [this, nsq]() {
      DoorbellState& state = doorbells_[static_cast<size_t>(nsq)];
      state.timer_armed = false;
      if (state.pending > 0) {
        if (trace_ != nullptr) {
          trace_->Record(machine_->now(), TraceCategory::kDoorbell, 0, nsq,
                         state.pending);
        }
        ++doorbells_rung_;
        doorbell_rqs_rung_ += static_cast<uint64_t>(state.pending);
        state.pending = 0;
        device_->RingDoorbell(nsq);
      }
    });
  }
}

void StorageStack::EnablePolledCompletion(int ncq, TickDuration interval) {
  device_->ncq(ncq).set_polled(true);
  machine_->sim().After(interval, [this, ncq, interval]() { PollBody(ncq, interval); });
}

void StorageStack::PollBody(int ncq_id, TickDuration interval) {
  const int core = device_->ncq(ncq_id).irq_core().value();
  machine_->Post(core, WorkLevel::kKernel, costs_.poll_base, [this, ncq_id, interval]() {
    auto cqes = device_->DrainCompletions(
        ncq_id, static_cast<size_t>(device_->config().queue_depth));
    const int poll_core = device_->ncq(ncq_id).irq_core().value();
    if (!cqes.empty()) {
      const TickDuration work =
          static_cast<Tick>(cqes.size()) * costs_.isr_per_cqe;
      machine_->Post(poll_core, WorkLevel::kKernel, work,
                     [this, ncq_id, poll_core, cqes = std::move(cqes)]() {
                       for (const auto& cqe : cqes) {
                         DeliverCompletion(cqe, ncq_id, poll_core);
                       }
                     });
    }
    machine_->sim().After(interval,
                          [this, ncq_id, interval]() { PollBody(ncq_id, interval); });
  });
}

void StorageStack::OnDeviceIrq(int ncq_id) {
  const int core = device_->ncq(ncq_id).irq_core().value();
  machine_->Post(core, WorkLevel::kIrq, costs_.isr_base,
                 [this, ncq_id]() { IsrBody(ncq_id); });
}

void StorageStack::IsrBody(int ncq_id) {
  auto cqes = device_->DrainCompletions(
      ncq_id, static_cast<size_t>(device_->config().queue_depth));
  const int irq_core = device_->ncq(ncq_id).irq_core().value();
  if (cqes.empty()) {
    device_->IrqDone(ncq_id);
    return;
  }
  // Charge per-CQE processing, then deliver and unmask.
  const TickDuration work = static_cast<Tick>(cqes.size()) * costs_.isr_per_cqe;
  machine_->Post(irq_core, WorkLevel::kIrq, work,
                 [this, ncq_id, irq_core, cqes = std::move(cqes)]() {
                   for (const auto& cqe : cqes) {
                     DeliverCompletion(cqe, ncq_id, irq_core);
                   }
                   device_->IrqDone(ncq_id);
                 });
}

void StorageStack::DeliverCompletion(const NvmeCompletion& cqe, int ncq_id,
                                     int irq_core) {
  auto* rq = static_cast<Request*>(cqe.cookie);
  DD_CHECK(rq != nullptr) << "CQE cid=" << cqe.cid << " carries no request";
  // Copy the device-side stage timeline and completion status onto the
  // request (the host-side stamps were written on the submission path).
  rq->status = cqe.status;
  rq->doorbell_time = cqe.doorbell_time;
  rq->fetch_start_time = cqe.fetch_start_time;
  rq->fetch_time = cqe.fetch_time;
  rq->flash_start_time = cqe.flash_start_time;
  rq->flash_end_time = cqe.flash_end_time;
  rq->cqe_post_time = cqe.posted_time;
  rq->drain_time = cqe.drained_time;
  // Lifecycle validation at completion: monotone stage chain, no double
  // completion, and the CQE must come back on the NSQ the request was routed
  // to (via that NSQ's statically bound NCQ).
  DD_CHECK(lifecycle_.OnComplete(*rq, machine_->now(), cqe.sqid, ncq_id,
                                 device_->NcqOfNsq(cqe.sqid)))
      << lifecycle_.last_violation();
  if (watchdog_enabled_) {
    // The attempt completed: cancel the armed deadline so no dead watchdog
    // callback lingers in the event queue.
    DisarmWatchdog(rq->id);
  }
  ++requests_completed_;
  if (sched_kind_ != IoSchedulerKind::kNone && rq->routed_nsq >= 0) {
    SchedState& state = sched_[static_cast<size_t>(rq->routed_nsq)];
    if (state.outstanding > 0) {
      --state.outstanding;
    }
    PumpScheduler(rq->routed_nsq);
  }
  if (rq->status != IoStatus::kOk) {
    ++error_completions_;
    if (watchdog_enabled_ && rq->fault_retries < recovery_.max_retries) {
      // Failed attempt with retries left: balance the routing hook for this
      // attempt, then re-drive the request through the full submission path
      // after a backed-off delay. The tenant never sees this completion.
      TenantErrorStats& es = ErrorStatsFor(*rq);
      ++fault_retries_;
      ++es.retries;
      if (trace_ != nullptr) {
        trace_->Record(machine_->now(), TraceCategory::kRetry, rq->id,
                       rq->routed_nsq, rq->fault_retries + 1);
      }
      OnRequestCompleted(rq);
      ScheduleRetry(rq);
      return;
    }
    // Retries exhausted (or no recovery armed): deliver the error.
    ++ErrorStatsFor(*rq).errors;
  }
  const int tenant_core = rq->tenant != nullptr ? rq->tenant->core : irq_core;
  if (tenant_core != irq_core) {
    ++cross_core_completions_;
  }
  if (trace_ != nullptr) {
    trace_->Record(machine_->now(), TraceCategory::kDeliver, rq->id, irq_core,
                   tenant_core);
  }
  OnRequestCompleted(rq);
  const TenantId tid = rq->tenant != nullptr ? rq->tenant->id : kNoTenant;
  machine_->Post(
      tenant_core, WorkLevel::kUser, costs_.complete_delivery,
      [this, rq, ncq_id, irq_core]() {
        rq->complete_time = machine_->now();
        if (timeline_ != nullptr) {
          // Last chance to copy the stage stamps: the workload layer recycles
          // the request object inside on_complete.
          timeline_->Append(*rq, irq_core, ncq_id);
        }
        if (rq->on_complete) {
          rq->on_complete(rq);
        }
      },
      tid, irq_core);
}

void StorageStack::SetFaultPlan(FaultPlan* plan) {
  device_->SetFaultPlan(plan);
  // The device normalizes empty plans to null; follow its decision so the
  // fault-free hot path never arms a watchdog (fingerprint contract).
  watchdog_enabled_ = device_->fault_plan() != nullptr;
}

StorageStack::TenantErrorStats& StorageStack::ErrorStatsFor(const Request& rq) {
  const TenantId tid = rq.tenant != nullptr ? rq.tenant->id : kNoTenant;
  return tenant_errors_[tid];
}

TickDuration StorageStack::BackoffFor(uint16_t attempt) const {
  // backoff * 2^(attempt-1), capped. attempt is 1-based (the first retry).
  const int shift = attempt > 1 ? attempt - 1 : 0;
  const Tick base = recovery_.backoff.ticks();
  const Tick cap = recovery_.backoff_cap.ticks();
  if (shift >= 62 || base > (cap >> shift)) {
    return recovery_.backoff_cap;
  }
  const Tick ns = base << shift;
  return ns < cap ? TickDuration{ns} : recovery_.backoff_cap;
}

void StorageStack::ArmWatchdog(Request* rq) {
  const uint16_t attempt = rq->fault_retries;
  const uint64_t id = rq->id;
  Outstanding& out = outstanding_[id];
  if (!out.timer.empty()) {
    // A prior attempt's deadline is still armed (defensive: the completion
    // and abort paths disarm before re-submission).
    machine_->sim().Cancel(out.timer);
  }
  out.rq = rq;
  out.attempt = attempt;
  out.armed_at = machine_->now();
  out.timer = machine_->sim().ScheduleAfter(
      recovery_.timeout, [this, id, attempt]() { OnWatchdogFire(id, attempt); });
}

void StorageStack::DisarmWatchdog(uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    return;
  }
  // A handle whose timer already fired is stale; Cancel is then a no-op.
  machine_->sim().Cancel(it->second.timer);
  outstanding_.erase(it);
}

void StorageStack::OnWatchdogFire(uint64_t id, uint16_t attempt) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end() || it->second.attempt != attempt) {
    return;  // Stale timer: the attempt completed or was already retried.
  }
  Request* rq = it->second.rq;
  ++timeouts_;
  ++ErrorStatsFor(*rq).timeouts;
  timeout_latency_ns_ += DurationBetween(it->second.armed_at, machine_->now());
  if (trace_ != nullptr) {
    trace_->Record(machine_->now(), TraceCategory::kTimeout, rq->id,
                   rq->routed_nsq, rq->fault_retries);
  }
  // Before declaring the command stuck, poll its bound NCQ: a dropped IRQ
  // leaves posted CQEs stranded, and aborting an already-completed command
  // would be a lifecycle violation (nvme_timeout polls before resetting too).
  const int nsq = rq->routed_nsq;
  const int ncq = nsq >= 0 ? device_->NcqOfNsq(nsq) : 0;
  const int core = device_->ncq(ncq).irq_core().value();
  machine_->Post(
      core, WorkLevel::kKernel, costs_.poll_base, [this, id, attempt, ncq, core]() {
        auto cqes = device_->DrainCompletions(
            ncq, static_cast<size_t>(device_->config().queue_depth));
        for (const auto& cqe : cqes) {
          DeliverCompletion(cqe, ncq, core);
        }
        auto it2 = outstanding_.find(id);
        if (it2 == outstanding_.end() || it2->second.attempt != attempt) {
          // The recovery poll found the completion (lost IRQ).
          ++watchdog_recovered_;
          return;
        }
        EscalateTimeout(it2->second.rq);
      });
}

void StorageStack::EscalateTimeout(Request* rq) {
  // Genuinely stuck: abort the outstanding attempt. The device reclaims the
  // NSQ/NCQ slot whichever stage the command sits in (queued, dropped,
  // mid-flash, or racing its CQE post).
  const uint64_t cid = rq->attempt_cid != 0 ? rq->attempt_cid : rq->id;
  device_->AbortCommand(rq->routed_nsq, cid);
  DD_CHECK(lifecycle_.OnAbort(*rq, machine_->now()))
      << lifecycle_.last_violation();
  DisarmWatchdog(rq->id);
  ++aborts_;
  TenantErrorStats& es = ErrorStatsFor(*rq);
  ++es.aborts;
  if (trace_ != nullptr) {
    trace_->Record(machine_->now(), TraceCategory::kAbort, rq->id,
                   rq->routed_nsq, rq->fault_retries);
  }
  // The aborted attempt will never see DeliverCompletion: balance the
  // routing hook and the scheduler dispatch window here.
  OnRequestCompleted(rq);
  if (sched_kind_ != IoSchedulerKind::kNone && rq->routed_nsq >= 0) {
    SchedState& state = sched_[static_cast<size_t>(rq->routed_nsq)];
    if (state.outstanding > 0) {
      --state.outstanding;
    }
    PumpScheduler(rq->routed_nsq);
  }
  if (rq->fault_retries < recovery_.max_retries) {
    ++fault_retries_;
    ++es.retries;
    if (trace_ != nullptr) {
      trace_->Record(machine_->now(), TraceCategory::kRetry, rq->id,
                     rq->routed_nsq, rq->fault_retries + 1);
    }
    ScheduleRetry(rq);
  } else {
    FailRequest(rq, IoStatus::kTimedOut);
  }
}

void StorageStack::ScheduleRetry(Request* rq) {
  ++rq->fault_retries;
  rq->PrepareRetry();
  rq->attempt_cid = (1ULL << 63) | ++next_attempt_cid_;
  const TickDuration delay = BackoffFor(rq->fault_retries);
  machine_->sim().After(delay, [this, rq]() { SubmitAsync(rq); });
}

void StorageStack::FailRequest(Request* rq, IoStatus status) {
  // Retries exhausted with no completion to deliver: fail the request to the
  // tenant from here. The stage stamps of the aborted attempt are partial,
  // so the timeline log is skipped - the trace stream already carries the
  // timeout/abort/retry records for attribution.
  rq->status = status;
  ++failed_requests_;
  ++ErrorStatsFor(*rq).errors;
  const int tenant_core = rq->tenant != nullptr ? rq->tenant->core : 0;
  const TenantId tid = rq->tenant != nullptr ? rq->tenant->id : kNoTenant;
  machine_->Post(
      tenant_core, WorkLevel::kUser, costs_.complete_delivery,
      [this, rq]() {
        rq->complete_time = machine_->now();
        if (rq->on_complete) {
          rq->on_complete(rq);
        }
      },
      tid);
}

}  // namespace daredevil
