file(REMOVE_RECURSE
  "../bench/bench_fig06_svm_pressure"
  "../bench/bench_fig06_svm_pressure.pdb"
  "CMakeFiles/bench_fig06_svm_pressure.dir/bench_fig06_svm_pressure.cc.o"
  "CMakeFiles/bench_fig06_svm_pressure.dir/bench_fig06_svm_pressure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_svm_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
