#include "tools/ddanalyze/layers.h"

#include <set>

namespace ddanalyze {

const std::vector<LayerSpec>& LayerTable() {
  // Keep in sync with the diagram in DESIGN.md §7.1.
  static const std::vector<LayerSpec> kTable = {
      {"time", {}},
      {"vocab", {"time"}},
      // The zero-allocation event core (ladder queue, arena, EventFn): pure
      // scheduling machinery below the simulator loop, speaking only time
      // and vocabulary (invariants) types.
      {"sim.engine", {"time", "vocab"}},
      {"sim", {"time", "vocab", "sim.engine"}},
      {"stats", {"time", "vocab", "sim.engine", "sim"}},
      // The fault plan sits below nvme: the device consults it, so it may
      // never speak nvme types (its API is primitives + vocab only).
      {"fault", {"time", "vocab", "sim.engine", "sim", "stats"}},
      {"nvme", {"time", "vocab", "sim.engine", "sim", "stats", "fault"}},
      {"stack",
       {"time", "vocab", "sim.engine", "sim", "stats", "fault", "nvme"}},
      {"blkmq",
       {"time", "vocab", "sim.engine", "sim", "stats", "fault", "nvme",
        "stack"}},
      {"blkswitch",
       {"time", "vocab", "sim.engine", "sim", "stats", "fault", "nvme",
        "stack"}},
      {"virtio",
       {"time", "vocab", "sim.engine", "sim", "stats", "fault", "nvme",
        "stack"}},
      {"core",
       {"time", "vocab", "sim.engine", "sim", "stats", "fault", "nvme",
        "stack"}},
      {"workload",
       {"time", "vocab", "sim.engine", "sim", "stats", "fault", "nvme",
        "stack", "blkmq", "blkswitch", "virtio", "core"}},
      // Apps are stack-implementation agnostic: they may see the abstract
      // stack interface but never a concrete stack or the NVMe layer.
      {"apps", {"time", "vocab", "sim.engine", "sim", "stats", "stack"}},
  };
  return kTable;
}

const std::map<std::string, std::string>& LayerOverrides() {
  static const std::map<std::string, std::string> kOverrides = {
      {"src/sim/clock.h", "time"},
      {"src/core/types.h", "vocab"},
      {"src/core/invariant.h", "vocab"},
      {"src/core/invariant.cc", "vocab"},
      {"src/stack/request.h", "vocab"},
  };
  return kOverrides;
}

std::string LayerOf(const std::string& rel_path) {
  auto it = LayerOverrides().find(rel_path);
  if (it != LayerOverrides().end()) {
    return it->second;
  }
  // The engine subdirectory is its own layer below sim (the only nested
  // layer; checked before the generic first-directory mapping).
  const std::string engine_prefix = "src/sim/engine/";
  if (rel_path.compare(0, engine_prefix.size(), engine_prefix) == 0) {
    return "sim.engine";
  }
  const std::string prefix = "src/";
  if (rel_path.compare(0, prefix.size(), prefix) != 0) {
    return "";
  }
  const std::size_t slash = rel_path.find('/', prefix.size());
  if (slash == std::string::npos) {
    return "";
  }
  const std::string dir = rel_path.substr(prefix.size(), slash - prefix.size());
  for (const LayerSpec& layer : LayerTable()) {
    if (layer.name == dir) {
      return dir;
    }
  }
  return "";
}

std::vector<std::string> ValidateLayerTable() {
  std::vector<std::string> problems;
  const auto& table = LayerTable();
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!index.emplace(table[i].name, i).second) {
      problems.push_back("duplicate layer '" + table[i].name + "'");
    }
  }
  for (const LayerSpec& layer : table) {
    for (const std::string& dep : layer.deps) {
      if (index.find(dep) == index.end()) {
        problems.push_back("layer '" + layer.name + "' depends on unknown '" +
                           dep + "'");
      }
      if (dep == layer.name) {
        problems.push_back("layer '" + layer.name + "' lists itself as a dep");
      }
    }
  }
  if (!problems.empty()) {
    return problems;
  }
  // Cycle detection over the declared edges (DFS, three colors).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  // Iterative DFS with an explicit stack of (node, next-dep-index).
  for (const LayerSpec& root : table) {
    if (color[root.name] != 0) {
      continue;
    }
    std::vector<std::pair<std::string, std::size_t>> dfs{{root.name, 0}};
    color[root.name] = 1;
    while (!dfs.empty()) {
      auto& [name, next] = dfs.back();
      const LayerSpec& spec = table[index[name]];
      if (next >= spec.deps.size()) {
        color[name] = 2;
        dfs.pop_back();
        continue;
      }
      const std::string dep = spec.deps[next++];
      if (color[dep] == 1) {
        problems.push_back("layer table cycle through '" + name + "' -> '" +
                           dep + "'");
        color[name] = 2;
        dfs.pop_back();
        continue;
      }
      if (color[dep] == 0) {
        color[dep] = 1;
        dfs.emplace_back(dep, 0);
      }
    }
  }
  return problems;
}

bool LayerEdgeAllowed(const std::string& from, const std::string& to) {
  if (from == to) {
    return true;
  }
  for (const LayerSpec& layer : LayerTable()) {
    if (layer.name == from) {
      for (const std::string& dep : layer.deps) {
        if (dep == to) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace ddanalyze
