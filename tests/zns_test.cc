// Tests for the ZNS-mode extension (§8.2: Daredevil applies to zoned
// namespaces unchanged because they retain the multi-queue feature).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/daredevil_stack.h"
#include "src/workload/scenario.h"

namespace daredevil {
namespace {

class ZnsTest : public ::testing::Test {
 protected:
  void Build(StackKind kind = StackKind::kDareFull) {
    ScenarioConfig cfg = MakeSvmConfig(2);
    cfg.stack = kind;
    cfg.device.nr_nsq = 8;
    cfg.device.nr_ncq = 8;
    cfg.device.namespace_pages = {1 << 16};
    cfg.device.zns_zone_pages = 256;  // 1MB zones
    cfg.device.flash.erase_after_programs = 0;
    env_ = std::make_unique<ScenarioEnv>(cfg);
    tenant_.id = TenantId{1};
    tenant_.core = 0;
    env_->stack().OnTenantStart(&tenant_);
  }

  // Issues one request and runs to completion.
  void Io(uint64_t lba, uint32_t pages, bool write, bool reset = false) {
    auto rq = std::make_unique<Request>();
    rq->id = next_id_++;
    rq->tenant = &tenant_;
    rq->lba = Lba{lba};
    rq->pages = pages;
    rq->is_write = write;
    rq->is_zone_reset = reset;
    rq->submit_core = 0;
    bool done = false;
    rq->on_complete = [&done](Request*) { done = true; };
    env_->stack().SubmitAsync(rq.get());
    env_->sim().RunUntilIdle();
    EXPECT_TRUE(done);
    requests_.push_back(std::move(rq));
  }

  std::unique_ptr<ScenarioEnv> env_;
  Tenant tenant_;
  uint64_t next_id_ = 1;
  std::vector<std::unique_ptr<Request>> requests_;
};

TEST_F(ZnsTest, SequentialWritesAdvanceWritePointer) {
  Build();
  Io(0, 64, /*write=*/true);
  Io(64, 64, /*write=*/true);
  EXPECT_EQ(env_->device().ZoneWritePointer(0), 128u);
  EXPECT_EQ(env_->device().zns_violations(), 0u);
}

TEST_F(ZnsTest, OutOfOrderWriteCountsViolation) {
  Build();
  Io(0, 64, /*write=*/true);
  Io(128, 64, /*write=*/true);  // gap: wp is at 64
  EXPECT_EQ(env_->device().zns_violations(), 1u);
  // The violating write does not advance the pointer.
  EXPECT_EQ(env_->device().ZoneWritePointer(0), 64u);
}

TEST_F(ZnsTest, ZoneCrossingWriteCountsViolation) {
  Build();
  Io(255, 4, /*write=*/true);  // would span zones 0 and 1 (and is not at wp)
  EXPECT_EQ(env_->device().zns_violations(), 1u);
}

TEST_F(ZnsTest, ReadsNeverViolate) {
  Build();
  Io(200, 8, /*write=*/false);
  Io(17, 1, /*write=*/false);
  EXPECT_EQ(env_->device().zns_violations(), 0u);
}

TEST_F(ZnsTest, ZoneResetRewindsPointer) {
  Build();
  Io(0, 128, /*write=*/true);
  EXPECT_EQ(env_->device().ZoneWritePointer(0), 128u);
  Io(0, 1, /*write=*/false, /*reset=*/true);
  EXPECT_EQ(env_->device().zns_resets(), 1u);
  EXPECT_EQ(env_->device().ZoneWritePointer(0), 0u);
  // The zone accepts sequential writes from the start again.
  Io(0, 32, /*write=*/true);
  EXPECT_EQ(env_->device().zns_violations(), 0u);
}

TEST_F(ZnsTest, ZonesAreIndependent) {
  Build();
  Io(0, 16, /*write=*/true);        // zone 0
  Io(256, 16, /*write=*/true);      // zone 1 from its start
  Io(512 + 0, 16, /*write=*/true);  // zone 2
  EXPECT_EQ(env_->device().zns_violations(), 0u);
  EXPECT_EQ(env_->device().ZoneWritePointer(1), 16u);
}

TEST_F(ZnsTest, DaredevilSeparationHoldsOnZnsDevice) {
  // §8.2: Daredevil works unchanged on ZNS. Zone-sequential T-writers plus a
  // random L-reader: separation + sequential discipline both hold.
  Build(StackKind::kDareFull);
  auto* dd = dynamic_cast<DaredevilStack*>(&env_->stack());
  ASSERT_NE(dd, nullptr);
  Tenant t_tenant;
  t_tenant.id = TenantId{2};
  t_tenant.core = 1;
  env_->stack().OnTenantStart(&t_tenant);

  uint64_t wp = 0;
  for (int i = 0; i < 12; ++i) {
    // Zone-append-style writer (sequential within zone 3).
    auto wrq = std::make_unique<Request>();
    wrq->id = next_id_++;
    wrq->tenant = &t_tenant;
    wrq->lba = Lba{3 * 256 + wp};
    wrq->pages = 16;
    wp += 16;
    wrq->is_write = true;
    wrq->submit_core = 1;
    env_->stack().SubmitAsync(wrq.get());
    requests_.push_back(std::move(wrq));
    // Random L read.
    auto rrq = std::make_unique<Request>();
    rrq->id = next_id_++;
    rrq->tenant = &tenant_;
    rrq->lba = Lba{static_cast<uint64_t>(i) * 97};
    rrq->pages = 1;
    rrq->submit_core = 0;
    env_->stack().SubmitAsync(rrq.get());
    requests_.push_back(std::move(rrq));
    env_->sim().RunUntilIdle();
  }
  EXPECT_EQ(env_->device().zns_violations(), 0u);
  // Separation check: promote the reader to realtime; its requests must land
  // in the high-priority NQGroup even on the ZNS device.
  tenant_.ionice = IoniceClass::kRealtime;
  env_->stack().OnIoniceChange(&tenant_);
  env_->sim().RunUntilIdle();
  auto rrq = std::make_unique<Request>();
  rrq->id = next_id_++;
  rrq->tenant = &tenant_;
  rrq->lba = Lba{5};
  rrq->pages = 1;
  rrq->submit_core = 0;
  bool done = false;
  rrq->on_complete = [&done](Request*) { done = true; };
  env_->stack().SubmitAsync(rrq.get());
  env_->sim().RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(dd->nqreg().GroupOfNsq(rrq->routed_nsq), NqPrio::kHigh);
  requests_.push_back(std::move(rrq));
}

TEST_F(ZnsTest, ZnsDisabledByDefault) {
  ScenarioConfig cfg = MakeSvmConfig(1);
  cfg.device.nr_nsq = 2;
  cfg.device.nr_ncq = 2;
  ScenarioEnv env(cfg);
  EXPECT_FALSE(env.device().zns_enabled());
}

}  // namespace
}  // namespace daredevil
