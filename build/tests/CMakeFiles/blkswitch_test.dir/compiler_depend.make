# Empty compiler generated dependencies file for blkswitch_test.
# This may be replaced when dependencies are built.
