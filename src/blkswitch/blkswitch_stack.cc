#include "src/blkswitch/blkswitch_stack.h"

#include <algorithm>
#include <cmath>

namespace daredevil {

BlkSwitchStack::BlkSwitchStack(Machine* machine, Device* device,
                               const StackCosts& costs, const BlkSwitchConfig& config)
    : StorageStack(machine, device, costs),
      config_(config),
      nr_hw_(std::max(1, std::min(machine->num_cores(), device->nr_nsq()))),
      rng_(config.seed) {
  per_ns_.resize(static_cast<size_t>(device->num_namespaces()));
  for (auto& ns : per_ns_) {
    ns.t_outstanding_bytes.assign(static_cast<size_t>(nr_hw_), 0);
    ns.t_core.assign(static_cast<size_t>(machine->num_cores()), false);
  }
}

BlkSwitchStack::PerNamespace& BlkSwitchStack::ns_state(uint32_t nsid) {
  DD_CHECK(nsid < per_ns_.size())
      << "nsid=" << nsid << " outside the device's " << per_ns_.size()
      << " namespaces";
  return per_ns_[nsid];
}

void BlkSwitchStack::RegisterMetrics(MetricsRegistry* registry) const {
  StorageStack::RegisterMetrics(registry);
  const BlkSwitchStack* s = this;
  registry->RegisterGauge("blkswitch.migrations", [s]() {
    return static_cast<double>(s->migrations());
  });
  registry->RegisterGauge("blkswitch.steered_requests", [s]() {
    return static_cast<double>(s->steered_requests());
  });
  registry->RegisterGauge("blkswitch.spilled_requests", [s]() {
    return static_cast<double>(s->spilled_requests());
  });
}

void BlkSwitchStack::OnTenantStart(Tenant* tenant) {
  PerNamespace& ns = ns_state(tenant->primary_nsid);
  ns.tenants.push_back(tenant);
  ++num_tenants_;
  RecomputePartition(ns);
  ArmReschedTimer();
}

void BlkSwitchStack::OnTenantExit(Tenant* tenant) {
  PerNamespace& ns = ns_state(tenant->primary_nsid);
  const auto before = ns.tenants.size();
  ns.tenants.erase(std::remove(ns.tenants.begin(), ns.tenants.end(), tenant),
                   ns.tenants.end());
  num_tenants_ -= before - ns.tenants.size();
  RecomputePartition(ns);
}

void BlkSwitchStack::RecomputePartition(PerNamespace& ns) {
  const int cores = machine().num_cores();
  int n_l = 0;
  int n_t = 0;
  for (const Tenant* t : ns.tenants) {
    (t->IsLatencySensitive() ? n_l : n_t) += 1;
  }
  std::fill(ns.t_core.begin(), ns.t_core.end(), false);
  if (n_t == 0 || cores < 1) {
    return;
  }
  int k_t;
  if (n_l == 0) {
    // The namespace's blk-mq structure sees no L-tenants at all, so every
    // core looks free for T traffic. With other namespaces hosting
    // L-tenants on those same cores/NQs, this is the Figure 3c blindness.
    k_t = cores;
  } else {
    const double share = static_cast<double>(n_t) / static_cast<double>(n_l + n_t);
    k_t = std::clamp(static_cast<int>(std::lround(share * cores)), 1, cores - 1);
  }
  // The highest-numbered cores are designated for T-tenants.
  for (int c = cores - k_t; c < cores; ++c) {
    ns.t_core[static_cast<size_t>(c)] = true;
  }
}

int BlkSwitchStack::SteerTarget(uint32_t nsid) {
  PerNamespace& ns = ns_state(nsid);
  auto pick_min = [&](bool t_cores_only) {
    uint64_t best_bytes = 0;
    int best = -1;
    int ties = 0;
    for (int q = 0; q < nr_hw_; ++q) {
      if (t_cores_only && !ns.t_core[static_cast<size_t>(q % machine().num_cores())]) {
        continue;
      }
      const uint64_t bytes = ns.t_outstanding_bytes[static_cast<size_t>(q)];
      if (best < 0 || bytes < best_bytes) {
        best = q;
        best_bytes = bytes;
        ties = 1;
      } else if (bytes == best_bytes) {
        // Reservoir-sample among ties.
        ++ties;
        if (rng_.NextBelow(static_cast<uint64_t>(ties)) == 0) {
          best = q;
        }
      }
    }
    return std::pair<int, uint64_t>(best, best_bytes);
  };

  auto [target, bytes] = pick_min(/*t_cores_only=*/true);
  if (target >= 0 && bytes <= config_.spill_bytes) {
    return target;
  }
  // The T-core NQs are saturated (or no T-core exists): blk-switch's
  // balancing objective takes over and it spreads across every NQ, re-mixing
  // T-requests with L traffic.
  auto [any_target, any_bytes] = pick_min(/*t_cores_only=*/false);
  (void)any_bytes;
  if (target >= 0 && any_target != target) {
    ++spilled_;
  }
  return any_target >= 0 ? any_target : 0;
}

int BlkSwitchStack::RouteRequest(Request* rq) {
  PerNamespace& ns = ns_state(rq->nsid);
  if (IsLatencyClass(*rq)) {
    // Prioritized processing: L-requests stay on their own core's NQ.
    return rq->submit_core % nr_hw_;
  }
  const int target = SteerTarget(rq->nsid);
  DD_CHECK(target >= 0 && target < nr_hw_)
      << "rq=" << rq->id << " steered to invalid NQ " << target;
  if (target != rq->submit_core % nr_hw_) {
    ++steered_;
  }
  ns.t_outstanding_bytes[static_cast<size_t>(target)] += rq->bytes();
  return target;
}

TickDuration BlkSwitchStack::RoutingCost(const Request& rq) const {
  return IsLatencyClass(rq) ? kZeroDuration : config_.steering_cost;
}

void BlkSwitchStack::OnRequestCompleted(Request* rq) {
  if (IsLatencyClass(*rq) || rq->routed_nsq < 0) {
    return;
  }
  PerNamespace& ns = ns_state(rq->nsid);
  auto& outstanding = ns.t_outstanding_bytes[static_cast<size_t>(rq->routed_nsq)];
  const uint64_t bytes = rq->bytes();
  outstanding = outstanding >= bytes ? outstanding - bytes : 0;
}

void BlkSwitchStack::ArmReschedTimer() {
  if (resched_armed_ || resched_stopped_) {
    return;
  }
  resched_armed_ = true;
  machine().sim().After(config_.resched_interval, [this]() {
    resched_armed_ = false;
    if (resched_stopped_) {
      return;
    }
    ReschedTick();
    if (num_tenants_ > 0) {
      ArmReschedTimer();
    }
  });
}

void BlkSwitchStack::ReschedTick() {
  ++rotate_;
  int budget = config_.max_migrations_per_tick;
  for (auto& ns : per_ns_) {
    if (!ns.tenants.empty()) {
      RecomputePartition(ns);
      ReschedNamespace(ns, &budget);
    }
  }
}

void BlkSwitchStack::ReschedNamespace(PerNamespace& ns, int* budget) {
  const int cores = machine().num_cores();
  std::vector<int> l_cores;
  std::vector<int> t_cores;
  for (int c = 0; c < cores; ++c) {
    (ns.t_core[static_cast<size_t>(c)] ? t_cores : l_cores).push_back(c);
  }
  if (t_cores.empty()) {
    return;
  }
  if (l_cores.empty()) {
    // T-only namespace: balance its tenants over every core.
    l_cores = t_cores;
  }

  // Desired placement: L-tenants round-robin over L-cores; T-tenants fill the
  // T-core scheduling slots; the overflow spills onto any core, rotating each
  // period (the thrash under high T-pressure).
  const int t_slots =
      static_cast<int>(t_cores.size()) * config_.max_t_apps_per_core;
  int l_index = 0;
  int t_index = 0;
  for (Tenant* tenant : ns.tenants) {
    int desired;
    if (tenant->IsLatencySensitive()) {
      desired =
          l_cores[static_cast<size_t>(l_index++ % static_cast<int>(l_cores.size()))];
    } else {
      const int i = t_index++;
      if (i < t_slots) {
        desired = t_cores[static_cast<size_t>(i % static_cast<int>(t_cores.size()))];
      } else {
        desired = (i - t_slots + rotate_) % cores;
      }
    }
    if (desired == tenant->core || *budget <= 0) {
      continue;
    }
    --(*budget);
    const int old_core = tenant->core;
    tenant->core = desired;
    ++migrations_;
    if (trace() != nullptr) {
      trace()->Record(machine().now(), TraceCategory::kMigrate,
                      tenant->id.value(),
                      old_core, desired);
    }
    // Migration overhead lands on both cores (runqueue + cache refill costs).
    machine().Post(old_core, WorkLevel::kKernel, config_.migration_cost, nullptr,
                   tenant->id);
    machine().Post(desired, WorkLevel::kKernel, config_.migration_cost, nullptr,
                   tenant->id);
  }
}

}  // namespace daredevil
