
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_io.cc" "src/apps/CMakeFiles/dd_apps.dir/app_io.cc.o" "gcc" "src/apps/CMakeFiles/dd_apps.dir/app_io.cc.o.d"
  "/root/repo/src/apps/kvstore.cc" "src/apps/CMakeFiles/dd_apps.dir/kvstore.cc.o" "gcc" "src/apps/CMakeFiles/dd_apps.dir/kvstore.cc.o.d"
  "/root/repo/src/apps/mailserver.cc" "src/apps/CMakeFiles/dd_apps.dir/mailserver.cc.o" "gcc" "src/apps/CMakeFiles/dd_apps.dir/mailserver.cc.o.d"
  "/root/repo/src/apps/simplefs.cc" "src/apps/CMakeFiles/dd_apps.dir/simplefs.cc.o" "gcc" "src/apps/CMakeFiles/dd_apps.dir/simplefs.cc.o.d"
  "/root/repo/src/apps/ycsb.cc" "src/apps/CMakeFiles/dd_apps.dir/ycsb.cc.o" "gcc" "src/apps/CMakeFiles/dd_apps.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/dd_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/dd_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
