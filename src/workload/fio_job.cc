#include "src/workload/fio_job.h"

#include "src/core/invariant.h"
#include "src/stats/slo.h"

namespace daredevil {

FioJob::FioJob(Machine* machine, StorageStack* stack, const FioJobSpec& spec,
               uint64_t tenant_id, int core, Rng rng, Tick measure_start,
               Tick measure_end)
    : machine_(machine),
      stack_(stack),
      spec_(spec),
      rng_(rng),
      measure_start_(measure_start),
      measure_end_(measure_end),
      next_rq_id_(tenant_id << 32) {
  tenant_.id = TenantId{tenant_id};
  tenant_.name = spec.name;
  tenant_.group = spec.group;
  tenant_.ionice = spec.ionice;
  tenant_.core = core;
  tenant_.primary_nsid = spec.nsid;

  const uint64_t ns_pages = stack_->device().NamespacePages(spec_.nsid);
  DD_CHECK(ns_pages >= spec_.pages)
      << "job " << spec_.name << " working set (" << spec_.pages
      << " pages) exceeds namespace " << spec_.nsid << " (" << ns_pages
      << " pages)";
  pool_.reserve(static_cast<size_t>(spec_.iodepth));
  free_list_.reserve(static_cast<size_t>(spec_.iodepth));
  for (int i = 0; i < spec_.iodepth; ++i) {
    auto rq = std::make_unique<Request>();
    rq->tenant = &tenant_;
    rq->on_complete = [this](Request* r) { OnComplete(r); };
    free_list_.push_back(rq.get());
    pool_.push_back(std::move(rq));
  }
  // Streaming jobs start at a random aligned offset so concurrent T-tenants
  // do not all hammer the same flash chips.
  seq_lba_ = rng_.NextBelow(ns_pages / spec_.pages) * spec_.pages;
}

bool FioJob::Stopped() const {
  const Tick now = machine_->now();
  if (spec_.stop_time >= 0 && now >= spec_.stop_time) {
    return true;
  }
  return false;
}

void FioJob::Start() {
  machine_->sim().At(spec_.start_time, [this]() {
    stack_->OnTenantStart(&tenant_);
    for (int i = 0; i < spec_.iodepth; ++i) {
      IssueOne();
    }
  });
  if (spec_.ionice_update_interval > kZeroDuration) {
    ArmIoniceUpdate();
  }
  if (spec_.migrate_interval > kZeroDuration) {
    ArmMigration();
  }
}

void FioJob::IssueOne() {
  if (free_list_.empty() || Stopped()) {
    return;
  }
  Request* rq = free_list_.back();
  free_list_.pop_back();
  ++inflight_;
  ++issued_;
  if (issued_cell_ != nullptr) {
    ++*issued_cell_;
  }

  rq->id = ++next_rq_id_;
  rq->nsid = spec_.nsid;
  rq->pages = spec_.pages;
  rq->is_write = spec_.is_write;
  rq->is_sync = spec_.sync_prob > 0.0 && rng_.NextBool(spec_.sync_prob);
  rq->is_meta = spec_.meta_prob > 0.0 && rng_.NextBool(spec_.meta_prob);
  const uint64_t ns_pages = stack_->device().NamespacePages(spec_.nsid);
  if (spec_.random) {
    rq->lba = Lba{rng_.NextBelow(ns_pages - spec_.pages + 1)};
  } else {
    rq->lba = Lba{seq_lba_};
    seq_lba_ += spec_.pages;
    if (seq_lba_ + spec_.pages > ns_pages) {
      seq_lba_ = 0;
    }
  }
  rq->ResetTimeline();  // pooled request: clear the previous run's stamps
  rq->issue_time = machine_->now();
  rq->routed_nsq = -1;

  // The syscall runs in user context on the tenant's current core, then the
  // stack takes over in kernel context.
  rq->submit_core = tenant_.core;
  const TickDuration issue_cost =
      stack_->costs().syscall +
      static_cast<Tick>(spec_.pages) * stack_->costs().per_page_user;
  machine_->Post(tenant_.core, WorkLevel::kUser, issue_cost,
                 [this, rq]() {
                   rq->submit_core = tenant_.core;
                   stack_->SubmitAsync(rq);
                 },
                 tenant_.id);
}

void FioJob::OnComplete(Request* rq) {
  --inflight_;
  ++completed_;
  if (rq->status != IoStatus::kOk) {
    // Fault runs only: the stack exhausted its retries and delivered the
    // failure. The request still counts as completed (it left the stack).
    ++errored_;
  }
  if (completed_cell_ != nullptr) {
    ++*completed_cell_;
  }
  const Tick latency = rq->complete_time - rq->issue_time;
  const Tick now = machine_->now();
  if (now >= measure_start_ && now < measure_end_) {
    latency_.Record(latency);
    stages_.Record(*rq);
    ++ios_;
    bytes_ += rq->bytes();
  }
  if (latency_series_ != nullptr) {
    latency_series_->Record(now, latency);
  }
  if (bytes_series_ != nullptr) {
    bytes_series_->Record(now, static_cast<int64_t>(rq->bytes()));
  }
  if (slo_ != nullptr) {
    slo_->Record(now, latency, rq->status == IoStatus::kOk);
  }
  free_list_.push_back(rq);
  ScheduleNextIssue();
}

void FioJob::ScheduleNextIssue() {
  if (Stopped()) {
    return;
  }
  if (spec_.think_time > kZeroDuration) {
    machine_->sim().After(spec_.think_time, [this]() { IssueOne(); });
  } else {
    IssueOne();
  }
}

void FioJob::ArmIoniceUpdate() {
  machine_->sim().After(spec_.ionice_update_interval, [this]() {
    if (machine_->now() >= measure_end_) {
      return;
    }
    // Re-applying the (unchanged) ionice value runs the kernel update path,
    // which re-schedules the tenant's default NSQ in Daredevil (§7.5). The
    // updater is a userspace syscall loop: the next update is armed only
    // after this one's syscall ran, so it self-throttles under CPU
    // saturation like the paper's updater.
    machine_->Post(tenant_.core, WorkLevel::kUser, stack_->costs().syscall,
                   [this]() {
                     stack_->OnIoniceChange(&tenant_);
                     ArmIoniceUpdate();
                   },
                   tenant_.id);
  });
}

void FioJob::ArmMigration() {
  machine_->sim().After(spec_.migrate_interval, [this]() {
    if (machine_->now() >= measure_end_) {
      return;
    }
    const int old_core = tenant_.core;
    const int new_core =
        static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(machine_->num_cores())));
    if (new_core != old_core) {
      tenant_.core = new_core;
      stack_->OnTenantMigrated(&tenant_, old_core);
    }
    ArmMigration();
  });
}

}  // namespace daredevil
