// Daredevil configuration knobs (§7 parameter setup) and the ablation
// switches of §7.3 (dare-base / dare-sched / dare-full).
#ifndef DAREDEVIL_SRC_CORE_CONFIG_H_
#define DAREDEVIL_SRC_CORE_CONFIG_H_

#include "src/core/types.h"
#include "src/sim/clock.h"

namespace daredevil {

struct DaredevilConfig {
  // Exponential-smoothing weight for NQ merits; the paper uses 0.8.
  double alpha = 0.8;
  // MRU budget per min-heap; the paper sets it to the NQ depth (1024).
  int mru = 1024;

  // Ablation switches (§7.3):
  //   dare-base : scheduling off, dispatch off (round-robin routing)
  //   dare-sched: scheduling on,  dispatch off
  //   dare-full : scheduling on,  dispatch on
  bool enable_nq_scheduling = true;
  bool enable_sla_dispatch = true;

  // SLA-aware submission dispatching: low-priority NSQs postpone the doorbell
  // until a batch accumulates (§5.3).
  int doorbell_batch = 8;
  TickDuration doorbell_timeout{100 * kMicrosecond};

  // Outlier profiling: re-evaluate a T-tenant's outlier tendency every this
  // many requests; tagged when outlier requests are within one order of
  // magnitude of normal ones (§5.2).
  int outlier_profile_window = 64;

  // Extensions beyond the paper's prototype (off by default; see
  // bench_ablation_mechanisms):
  // When the device is in WRR arbitration mode, give high-priority-group
  // NSQs this fetch weight (T NSQs keep weight 1).
  bool use_wrr_weights = false;
  int wrr_high_weight = 4;
  // Poll high-priority NCQs at this interval instead of taking IRQs (0 = IRQ).
  TickDuration poll_interval{0};

  // CPU cost model of the Daredevil-specific kernel work.
  TickDuration routing_cost{400};         // Algorithm 1 per request
  TickDuration schedule_query_cost{600};  // extra nqreg query (request-specific ctx)
  TickDuration ionice_update_cost{10 * kMicrosecond};  // ionice path + RCU sync + re-scheduling
};

inline DaredevilConfig DareBaseConfig() {
  DaredevilConfig c;
  c.enable_nq_scheduling = false;
  c.enable_sla_dispatch = false;
  return c;
}

inline DaredevilConfig DareSchedConfig() {
  DaredevilConfig c;
  c.enable_sla_dispatch = false;
  return c;
}

inline DaredevilConfig DareFullConfig() { return DaredevilConfig{}; }

}  // namespace daredevil

#endif  // DAREDEVIL_SRC_CORE_CONFIG_H_
