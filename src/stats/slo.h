// Per-tenant SLO engine: windowed burn-rate tracking and violation episodes.
//
// The paper's claim is not "Daredevil is fast" but "a latency tenant keeps
// meeting its objective while bulk tenants hammer the device". That claim
// needs a first-class notion of the objective itself: an SloSpec names a
// target ("99% of requests under 500us, evaluated over 5ms windows") and an
// SloTracker consumes the per-request delivery timestamps to answer, per
// tenant,
//
//   * windowed good/bad-request counts (a delivery is *good* iff it completed
//     with IoStatus::kOk and its end-to-end latency is <= the threshold),
//   * cumulative error-budget burn (budget = the fraction of requests the
//     target percentile allows to be bad; burn = bad / (budget * total)),
//   * SRE-style multi-window burn rates: a *fast* rate over each single
//     window and a *slow* rate over the trailing N windows, and
//   * discrete violation episodes: maximal runs of consecutive windows whose
//     fast burn rate reaches the alert threshold.
//
// Episodes are cross-linked with the HOL-blocking attribution (holb.h): each
// episode re-runs the attribution pass restricted to the tenant's requests
// that completed inside the episode, so a violation carries its dominant
// blocker ("T3 via same-queue-head") instead of just a timestamp range. The
// Perfetto exporter renders episodes as slices on a per-tenant SLO track.
//
// Determinism: the tracker is fed from the delivery path but only accumulates
// counts - it never schedules events or draws randomness - and the report is
// serialized outside the fingerprinted projection of ScenarioResult::ToJson,
// so a run with SLO tracking enabled fingerprints byte-identically to one
// without (see DeterminismGate.SloTrackingDoesNotPerturbFingerprints).
#ifndef DAREDEVIL_SRC_STATS_SLO_H_
#define DAREDEVIL_SRC_STATS_SLO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/stats/histogram.h"
#include "src/stats/time_series.h"

namespace daredevil {

class JsonWriter;      // src/stats/metrics.h
struct RequestRecord;  // src/stats/trace_export.h

// A latency objective for one tenant or one tenant group.
struct SloSpec {
  // Matches a tenant by exact job name ("L0") or, failing that, by group
  // ("L"). Exact-name specs win over group specs; each matched tenant gets
  // its own independent tracking state.
  std::string selector = "L";
  // Target percentile of requests that must meet the threshold. The error
  // budget is the complement: p99 allows 1% of requests to be bad. Clamped
  // to [0, 99.999] so the budget never collapses to zero.
  double target_percentile = 99.0;
  // The latency objective (end-to-end, issue -> delivery).
  Tick threshold = 500 * kMicrosecond;
  // Evaluation window width for the fast burn rate.
  Tick window = 5 * kMillisecond;
  // Trailing windows aggregated into the slow burn rate (>= 1).
  int slow_windows = 6;
  // A window is in violation when its fast burn rate reaches this multiple
  // of the error budget (1.0 = the window spent budget exactly as fast as
  // the objective allows).
  double burn_alert = 1.0;
};

// One evaluation window of one tenant, with both burn rates evaluated at it.
struct SloWindow {
  Tick start = 0;
  uint64_t good = 0;
  uint64_t bad = 0;
  double fast_burn = 0.0;  // (bad/total)/budget over this window
  double slow_burn = 0.0;  // same over the trailing slow_windows windows
  bool violating = false;  // total > 0 && fast_burn >= burn_alert
};

// A blocker row aggregated from the HOL attribution of violation episodes.
struct SloBlameRow {
  std::string key;  // blocker tenant display name
  uint64_t blocking_events = 0;
  Tick head_block_ns = 0;
  Tick fetch_slot_ns = 0;
  Tick total_ns() const { return head_block_ns + fetch_slot_ns; }
};

// A maximal run of consecutive violating windows.
struct SloEpisode {
  Tick begin = 0;  // start of the first violating window
  Tick end = 0;    // end of the last violating window (clamped to horizon)
  uint64_t bad = 0;
  uint64_t total = 0;
  double peak_burn = 0.0;  // max fast burn rate across the episode
  // Dominant blocker, filled by AttributeSloEpisodes (empty = unattributed):
  // the tenant whose head/fetch intervals overlap this episode's victim
  // waits the most, and the mechanism it dominated through.
  std::string blame;
  std::string mechanism;  // "same-queue-head" | "fetch-slot" | "unattributed"
  Tick blame_ns = 0;      // blocking nanoseconds charged to `blame`

  Tick duration() const { return end - begin; }
};

// The finalized per-tenant verdict.
struct SloTenantReport {
  std::string tenant;
  uint64_t tenant_id = 0;
  SloSpec spec;
  uint64_t good = 0;
  uint64_t bad = 0;
  uint64_t ignored = 0;  // deliveries outside [origin, horizon)
  double conformance_pct = 100.0;  // 100 * good / (good + bad)
  bool met = true;                 // conformance_pct >= target_percentile
  // Fraction of the whole-run error budget consumed (1.0 = exhausted; can
  // exceed 1 when the tenant blows through it).
  double budget_burned = 0.0;
  int64_t achieved_ns = 0;  // measured latency at the target percentile
  double max_slow_burn = 0.0;
  std::vector<SloWindow> windows;
  std::vector<SloEpisode> episodes;
  // Blocker ranking aggregated over all attributed episodes, descending.
  std::vector<SloBlameRow> attribution;

  uint64_t total() const { return good + bad; }
  // Worst episode: longest duration, ties broken by the most attributed
  // blocking time (an episode with an identified culprit is more actionable
  // than an equally long unattributed one), then by earliest begin. Null
  // when the tenant never violated.
  const SloEpisode* WorstEpisode() const;
};

struct SloReport {
  // Sorted by tenant name (std::map keeps JSON order-stable).
  std::map<std::string, SloTenantReport> tenants;

  bool empty() const { return tenants.empty(); }
  const SloTenantReport* Find(const std::string& tenant) const;
  // Union conformance over every tracked tenant (100 when none).
  double AggregateConformancePct() const;
  // Worst per-tenant budget burn (0 when none).
  double MaxBudgetBurned() const;
  uint64_t TotalEpisodes() const;

  void AppendJson(JsonWriter& w) const;
  // Human-readable conformance table for bench output.
  std::string ToTable() const;
};

// Per-tenant accumulation state. Owned by SloTracker; the workload layer
// holds a raw pointer and feeds it one call per delivered request.
class SloTenantState {
 public:
  SloTenantState(std::string tenant, uint64_t tenant_id, const SloSpec& spec,
                 Tick origin, Tick horizon);

  // Records one delivery: `at` is the completion timestamp, `latency` the
  // end-to-end latency, `ok` whether the completion status was IoStatus::kOk.
  // Deliveries outside [origin, horizon) are counted but not windowed.
  void Record(Tick at, Tick latency, bool ok);

  const std::string& tenant() const { return tenant_; }
  const SloSpec& spec() const { return spec_; }

 private:
  friend class SloTracker;

  std::string tenant_;
  uint64_t tenant_id_;
  SloSpec spec_;
  Tick origin_;
  Tick horizon_;
  // Windowed latency distribution (totals + per-window histograms) on the
  // shared TimeSeries substrate; bad counts ride alongside per window.
  TimeSeries latencies_;
  std::vector<uint64_t> bad_per_window_;
  Histogram all_latencies_;
  uint64_t good_ = 0;
  uint64_t bad_ = 0;
  uint64_t ignored_ = 0;
};

// The engine: owns one SloTenantState per matched tenant and derives the
// windowed burn rates, episodes and verdicts at finalize time.
class SloTracker {
 public:
  // `origin`/`horizon` bound the evaluated range (the scenario's measurement
  // window); windows are anchored at `origin`.
  SloTracker(std::vector<SloSpec> specs, Tick origin, Tick horizon);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // No specs configured: tracking is disabled and AddTenant always declines.
  bool empty() const { return specs_.empty(); }

  // Registers a tenant if some spec selects it (exact name match wins over
  // group match). Returns the tenant's state - stable for the tracker's
  // lifetime - or nullptr when no spec applies.
  SloTenantState* AddTenant(const std::string& name, const std::string& group,
                            uint64_t tenant_id);

  // Closes the windows and derives burn rates, episodes and verdicts.
  // Attribution fields stay empty until AttributeSloEpisodes.
  SloReport Finalize() const;

 private:
  const SloSpec* MatchSpec(const std::string& name,
                           const std::string& group) const;

  std::vector<SloSpec> specs_;
  Tick origin_;
  Tick horizon_;
  // Node-stable: the workload layer keeps raw pointers across the run.
  std::vector<std::unique_ptr<SloTenantState>> states_;
};

// Cross-links violation episodes with the HOL-blocking attribution: for each
// episode, re-runs AnalyzeHolBlocking over `records` with the victims
// restricted to the episode's tenant and completion range, then fills
// blame/mechanism/blame_ns and the per-tenant attribution ranking. Pure
// post-processing over captured records; deterministic.
void AttributeSloEpisodes(SloReport& report,
                          const std::vector<RequestRecord>& records,
                          const std::map<uint64_t, std::string>& tenant_names);

}  // namespace daredevil

#endif  // DAREDEVIL_SRC_STATS_SLO_H_
