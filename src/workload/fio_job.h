// FIO-like closed-loop workload generator (the paper evaluates with FIO jobs:
// L-tenants = 4KB random QD1 realtime-ionice, T-tenants = 128KB QD32
// best-effort, both via libaio).
#ifndef DAREDEVIL_SRC_WORKLOAD_FIO_JOB_H_
#define DAREDEVIL_SRC_WORKLOAD_FIO_JOB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/stack/storage_stack.h"
#include "src/stats/histogram.h"
#include "src/stats/metrics.h"
#include "src/stats/time_series.h"

namespace daredevil {

class SloTenantState;  // src/stats/slo.h

struct FioJobSpec {
  std::string name;
  std::string group = "T";  // stats label ("L", "T", "TL", ...)
  IoniceClass ionice = IoniceClass::kBestEffort;
  uint32_t nsid = 0;
  uint32_t pages = 32;  // request size in 4KB pages (32 => 128KB)
  int iodepth = 32;
  bool is_write = false;
  bool random = true;
  double sync_prob = 0.0;  // probability a request carries REQ_SYNC
  double meta_prob = 0.0;  // probability a request carries REQ_META
  TickDuration think_time{0};  // delay between completion and next issue
  Tick start_time = 0;
  Tick stop_time = -1;     // -1 => run until the scenario ends
  int core = -1;           // -1 => assigned round-robin by the scenario

  // Fault/behaviour injection used by the overhead experiments:
  // >0: re-apply the tenant's ionice value periodically, triggering the
  // kernel update path and Daredevil's default-NSQ re-scheduling (Fig 14).
  TickDuration ionice_update_interval{0};
  TickDuration migrate_interval{0};  // >0: hop cores periodically (Fig 13)
};

inline FioJobSpec LTenantSpec(int index, uint32_t nsid = 0) {
  FioJobSpec spec;
  spec.name = "L" + std::to_string(index);
  spec.group = "L";
  spec.ionice = IoniceClass::kRealtime;
  spec.nsid = nsid;
  spec.pages = 1;  // 4KB
  spec.iodepth = 1;
  spec.is_write = false;
  spec.random = true;
  return spec;
}

inline FioJobSpec TTenantSpec(int index, uint32_t nsid = 0) {
  FioJobSpec spec;
  spec.name = "T" + std::to_string(index);
  spec.group = "T";
  spec.ionice = IoniceClass::kBestEffort;
  spec.nsid = nsid;
  spec.pages = 32;  // 128KB
  spec.iodepth = 32;
  spec.is_write = true;
  spec.random = false;  // streaming
  return spec;
}

class FioJob {
 public:
  FioJob(Machine* machine, StorageStack* stack, const FioJobSpec& spec,
         uint64_t tenant_id, int core, Rng rng, Tick measure_start,
         Tick measure_end);

  // Schedules the job's first issues (and periodic behaviours) on the
  // simulator; the job then self-perpetuates in closed loop.
  void Start();

  Tenant& tenant() { return tenant_; }
  const FioJobSpec& spec() const { return spec_; }

  // Measured within [measure_start, measure_end) only.
  const Histogram& latency() const { return latency_; }
  // Per-stage lifecycle breakdown of the measured requests.
  const StageBreakdown& stages() const { return stages_; }
  uint64_t measured_ios() const { return ios_; }
  uint64_t measured_bytes() const { return bytes_; }
  uint64_t total_issued() const { return issued_; }
  uint64_t total_completed() const { return completed_; }
  // Completions delivered with status != kOk (fault-injection runs only).
  uint64_t total_errored() const { return errored_; }
  int inflight() const { return inflight_; }

  // Optional whole-run series (shared per group; owned by the scenario).
  void AttachSeries(TimeSeries* latency_series, TimeSeries* bytes_series) {
    latency_series_ = latency_series;
    bytes_series_ = bytes_series;
  }

  // Optional SLO observer (owned by the scenario's SloTracker; null is fine
  // and means this tenant matched no spec). Fed one call per delivery.
  void AttachSlo(SloTenantState* slo) { slo_ = slo; }

  // Registers this job's traffic into group-aggregated counters
  // ("workload.<group>.issued" / ".completed"); jobs of the same group share
  // the cells by name.
  void AttachMetrics(MetricsRegistry* registry) {
    issued_cell_ = registry->Counter("workload." + spec_.group + ".issued");
    completed_cell_ = registry->Counter("workload." + spec_.group + ".completed");
  }

 private:
  void IssueOne();
  void OnComplete(Request* rq);
  void ScheduleNextIssue();
  void ArmIoniceUpdate();
  void ArmMigration();
  bool Stopped() const;

  Machine* machine_;
  StorageStack* stack_;
  FioJobSpec spec_;
  Tenant tenant_;
  Rng rng_;
  Tick measure_start_;
  Tick measure_end_;

  // Pooled and recycled across the whole run: keep the request compact so a
  // deep pool stays cache-resident (growth here is a hot-path regression).
  static_assert(sizeof(Request) <= 256,
                "Request outgrew its pooled-allocation budget");
  std::vector<std::unique_ptr<Request>> pool_;
  std::vector<Request*> free_list_;
  uint64_t next_rq_id_;
  uint64_t seq_lba_ = 0;

  Histogram latency_;
  StageBreakdown stages_;
  uint64_t ios_ = 0;
  uint64_t bytes_ = 0;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t errored_ = 0;
  int inflight_ = 0;
  uint64_t* issued_cell_ = nullptr;
  uint64_t* completed_cell_ = nullptr;

  TimeSeries* latency_series_ = nullptr;
  TimeSeries* bytes_series_ = nullptr;
  SloTenantState* slo_ = nullptr;
};

}  // namespace daredevil

#endif  // DAREDEVIL_SRC_WORKLOAD_FIO_JOB_H_
