# Empty compiler generated dependencies file for bench_fig12_mailserver.
# This may be replaced when dependencies are built.
