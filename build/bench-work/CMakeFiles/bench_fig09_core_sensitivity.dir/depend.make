# Empty dependencies file for bench_fig09_core_sensitivity.
# This may be replaced when dependencies are built.
