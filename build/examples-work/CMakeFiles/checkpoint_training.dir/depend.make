# Empty dependencies file for checkpoint_training.
# This may be replaced when dependencies are built.
