// The discrete-event simulator driving every experiment in this repository.
#ifndef DAREDEVIL_SRC_SIM_SIMULATOR_H_
#define DAREDEVIL_SRC_SIM_SIMULATOR_H_

#include <cstdint>

#include "src/core/types.h"
#include "src/sim/clock.h"
#include "src/sim/engine/event_fn.h"
#include "src/sim/engine/ladder_queue.h"
#include "src/sim/engine/timer_handle.h"

namespace daredevil {

// Single-threaded deterministic event loop over the zero-allocation engine
// core (src/sim/engine/): a ladder queue of arena-pooled event records with
// inline EventFn callbacks. Components schedule callbacks at absolute or
// relative simulated times; RunUntil() advances the clock, dispatching whole
// same-tick batches per bucket visit. Timers that may need to be retired
// early use the ScheduleAt/ScheduleAfter + Cancel handle API instead of
// epoch-guarded dead callbacks.
class Simulator {
 public:
  Simulator() = default;
  // Tags the loop with the shard it drives (ShardContext, src/sim/shard.h).
  // Purely an identity: single-shard construction stays the default.
  explicit Simulator(ShardId shard) : shard_(shard) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ShardId shard() const { return shard_; }

  Tick now() const { return now_; }
  // Events dispatched (cancelled events never dispatch and are not counted).
  uint64_t events_processed() const { return events_processed_; }
  // Live (scheduled, not yet fired or cancelled) events.
  size_t pending_events() const { return engine_.live(); }
  // Schedules clamped into the past (engine-central policy: a tick before
  // now fires at now, in schedule order). Exposed for tests and diagnostics;
  // deliberately not a metrics gauge - the metrics snapshot is fingerprinted.
  uint64_t clamped_events() const { return engine_.clamped(); }
  uint64_t cancelled_events() const { return engine_.cancelled(); }

  // Schedules fn at absolute time t (clamped to now if t is in the past).
  void At(Tick t, EventFn fn) { engine_.Push(now_, t, std::move(fn)); }

  // Schedules fn after the given delay (a negative delay is treated as 0,
  // via the engine's past-time clamp).
  void After(TickDuration delay, EventFn fn) {
    engine_.Push(now_, now_ + delay, std::move(fn));
  }

  // Handle-returning variants for timers that may be cancelled before they
  // fire (watchdogs, self-rescheduling samplers).
  TimerHandle ScheduleAt(Tick t, EventFn fn) {
    return engine_.Push(now_, t, std::move(fn));
  }
  TimerHandle ScheduleAfter(TickDuration delay, EventFn fn) {
    return engine_.Push(now_, now_ + delay, std::move(fn));
  }

  // Cancels a pending timer; the callback will never run. Returns false on
  // an empty/stale handle (already fired or already cancelled) and clears
  // the handle either way.
  bool Cancel(TimerHandle& handle) {
    const bool cancelled = engine_.Cancel(handle);
    handle.Clear();
    return cancelled;
  }

  // Processes the next event if any; returns false when the queue is empty.
  bool Step();

  // Runs events until the clock reaches t. Events scheduled exactly at t are
  // processed. The clock ends at max(now, t).
  void RunUntil(Tick t);

  // Runs until no events remain.
  void RunUntilIdle();

 private:
  ShardId shard_ = kShard0;
  Tick now_ = 0;
  uint64_t events_processed_ = 0;
  LadderQueue engine_;
};

}  // namespace daredevil

#endif  // DAREDEVIL_SRC_SIM_SIMULATOR_H_
