// Tests for the extension mechanisms: block-layer I/O splitting (§2.3), WRR
// controller arbitration, polled completions, and the remote-doorbell
// contention accounting that feeds the NSQ merit.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/blkmq/blkmq_stack.h"
#include "src/core/daredevil_stack.h"
#include "src/sim/simulator.h"
#include "src/workload/scenario.h"

namespace daredevil {
namespace {

class MechanismsTest : public ::testing::Test {
 protected:
  MechanismsTest() {
    Machine::Config machine_config;
    machine_config.num_cores = 2;
    machine_ = std::make_unique<Machine>(&sim_, machine_config);
    DeviceConfig device_config;
    device_config.nr_nsq = 4;
    device_config.nr_ncq = 4;
    device_config.namespace_pages = {1 << 16};
    device_config.flash.erase_after_programs = 0;
    device_ = std::make_unique<Device>(&sim_, device_config);
    stack_ = std::make_unique<BlkMqStack>(machine_.get(), device_.get(),
                                          StackCosts{});
    tenant_.id = TenantId{1};
    tenant_.core = 0;
  }

  Request* NewRequest(uint32_t pages, uint64_t lba = 0) {
    auto rq = std::make_unique<Request>();
    rq->id = next_id_++;
    rq->tenant = &tenant_;
    rq->pages = pages;
    rq->lba = Lba{lba};
    rq->submit_core = 0;
    rq->on_complete = [this](Request* r) { completed_.push_back(r); };
    requests_.push_back(std::move(rq));
    return requests_.back().get();
  }

  Simulator sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Device> device_;
  std::unique_ptr<BlkMqStack> stack_;
  Tenant tenant_;
  uint64_t next_id_ = (1ULL << 32) + 1;
  std::vector<std::unique_ptr<Request>> requests_;
  std::vector<Request*> completed_;
};

// --- I/O splitting ---------------------------------------------------------

TEST_F(MechanismsTest, SplitDisabledByDefault) {
  EXPECT_EQ(stack_->split_threshold(), 0u);
  stack_->SubmitAsync(NewRequest(32));
  sim_.RunUntilIdle();
  EXPECT_EQ(stack_->requests_split(), 0u);
  EXPECT_EQ(device_->commands_completed(), 1u);
}

TEST_F(MechanismsTest, SplitDecomposesLargeRequests) {
  stack_->SetSplitThreshold(8);
  Request* rq = NewRequest(32);
  stack_->SubmitAsync(rq);
  sim_.RunUntilIdle();
  ASSERT_EQ(completed_.size(), 1u);  // parent completes once
  EXPECT_EQ(completed_[0], rq);
  EXPECT_EQ(stack_->requests_split(), 1u);
  // 4 chunks traversed the device.
  EXPECT_EQ(device_->commands_completed(), 4u);
  EXPECT_EQ(stack_->requests_submitted(), 4u);
  EXPECT_GT(rq->complete_time, rq->issue_time);
}

TEST_F(MechanismsTest, SplitHandlesRemainderChunk) {
  stack_->SetSplitThreshold(8);
  stack_->SubmitAsync(NewRequest(20));  // 8 + 8 + 4
  sim_.RunUntilIdle();
  EXPECT_EQ(device_->commands_completed(), 3u);
  EXPECT_EQ(completed_.size(), 1u);
}

TEST_F(MechanismsTest, SmallRequestsNotSplit) {
  stack_->SetSplitThreshold(8);
  stack_->SubmitAsync(NewRequest(8));
  stack_->SubmitAsync(NewRequest(1));
  sim_.RunUntilIdle();
  EXPECT_EQ(stack_->requests_split(), 0u);
  EXPECT_EQ(device_->commands_completed(), 2u);
}

TEST_F(MechanismsTest, SplitChunksOccupySameTotalNqSpace) {
  // §2.3: the split chunks take more NQ entries but the same page total.
  stack_->SetSplitThreshold(8);
  stack_->SubmitAsync(NewRequest(32));
  sim_.RunUntilIdle();
  EXPECT_EQ(device_->flash().pages_read(), 32u);
  EXPECT_EQ(device_->nsq(0).submitted_rqs(), 4u);  // 4 entries, not 1
}

TEST_F(MechanismsTest, ManyConcurrentSplitsConserve) {
  stack_->SetSplitThreshold(4);
  for (int i = 0; i < 16; ++i) {
    stack_->SubmitAsync(NewRequest(32, static_cast<uint64_t>(i) * 64));
  }
  sim_.RunUntilIdle();
  EXPECT_EQ(completed_.size(), 16u);
  EXPECT_EQ(device_->commands_completed(), 16u * 8u);
}

// --- WRR arbitration --------------------------------------------------------

TEST_F(MechanismsTest, WrrWeightsControlFetchShare) {
  DeviceConfig config;
  config.arbitration = ArbitrationPolicy::kWeightedRoundRobin;
  config.nr_nsq = 2;
  config.nr_ncq = 2;
  config.arb_burst = 1;
  config.max_inflight_pages = 1;  // force strict one-at-a-time fetching
  config.namespace_pages = {1 << 16};
  config.flash.erase_after_programs = 0;
  Device device(&sim_, config);
  device.nsq(0).set_weight(3);
  std::vector<uint64_t> fetch_order;
  device.SetIrqHandler([&](int ncq) {
    for (const auto& cqe : device.DrainCompletions(ncq, 16)) {
      fetch_order.push_back(cqe.cid);
    }
    device.IrqDone(ncq);
  });
  // Queue 0 (weight 3) ids 100+; queue 1 (weight 1) ids 200+.
  for (uint64_t i = 0; i < 6; ++i) {
    NvmeCommand cmd;
    cmd.cid = 100 + i;
    cmd.lba = Lba{i};
    ASSERT_TRUE(device.Enqueue(0, cmd));
    cmd.cid = 200 + i;
    ASSERT_TRUE(device.Enqueue(1, cmd));
  }
  device.RingDoorbell(0);
  device.RingDoorbell(1);
  sim_.RunUntilIdle();
  ASSERT_EQ(fetch_order.size(), 12u);
  // Among the first 8 completions, ~3/4 should come from the weighted queue.
  int q0 = 0;
  for (size_t i = 0; i < 8; ++i) {
    q0 += fetch_order[i] < 200 ? 1 : 0;
  }
  EXPECT_GE(q0, 5);
}

TEST_F(MechanismsTest, RoundRobinIgnoresWeights) {
  DeviceConfig config;
  config.arbitration = ArbitrationPolicy::kRoundRobin;
  config.nr_nsq = 2;
  config.nr_ncq = 2;
  config.arb_burst = 1;
  config.max_inflight_pages = 1;
  config.namespace_pages = {1 << 16};
  config.flash.erase_after_programs = 0;
  Device device(&sim_, config);
  device.nsq(0).set_weight(8);  // must have no effect under plain RR
  std::vector<uint64_t> order;
  device.SetIrqHandler([&](int ncq) {
    for (const auto& cqe : device.DrainCompletions(ncq, 16)) {
      order.push_back(cqe.cid);
    }
    device.IrqDone(ncq);
  });
  for (uint64_t i = 0; i < 4; ++i) {
    NvmeCommand cmd;
    cmd.cid = 100 + i;
    cmd.lba = Lba{i};
    ASSERT_TRUE(device.Enqueue(0, cmd));
    cmd.cid = 200 + i;
    ASSERT_TRUE(device.Enqueue(1, cmd));
  }
  device.RingDoorbell(0);
  device.RingDoorbell(1);
  sim_.RunUntilIdle();
  int q0_first_half = 0;
  for (size_t i = 0; i < 4; ++i) {
    q0_first_half += order[i] < 200 ? 1 : 0;
  }
  EXPECT_EQ(q0_first_half, 2);  // fair alternation
}

TEST_F(MechanismsTest, DaredevilAppliesWrrWeights) {
  ScenarioConfig cfg = MakeSvmConfig(2);
  cfg.device.nr_nsq = 8;
  cfg.device.nr_ncq = 8;
  cfg.device.arbitration = ArbitrationPolicy::kWeightedRoundRobin;
  cfg.stack = StackKind::kDareFull;
  cfg.dd.use_wrr_weights = true;
  cfg.dd.wrr_high_weight = 4;
  ScenarioEnv env(cfg);
  auto* dd = dynamic_cast<DaredevilStack*>(&env.stack());
  ASSERT_NE(dd, nullptr);
  for (int q = 0; q < env.device().nr_nsq(); ++q) {
    const int expected =
        dd->nqreg().GroupOfNsq(q) == NqPrio::kHigh ? 4 : 1;
    EXPECT_EQ(env.device().nsq(q).weight(), expected) << "nsq " << q;
  }
}

// --- Polled completions ------------------------------------------------------

TEST_F(MechanismsTest, PolledNcqNeverRaisesIrq) {
  int irqs = 0;
  // Replace the handler installed by the stack to count raw IRQs.
  device_->SetIrqHandler([&](int) { ++irqs; });
  device_->ncq(0).set_polled(true);
  NvmeCommand cmd;
  cmd.cid = 1;
  ASSERT_TRUE(device_->Enqueue(0, cmd));
  device_->RingDoorbell(0);
  sim_.RunUntilIdle();
  EXPECT_EQ(irqs, 0);
  EXPECT_EQ(device_->ncq(0).pending(), 1u);  // waiting for the poller
}

TEST_F(MechanismsTest, PolledCompletionDeliversWithinInterval) {
  const TickDuration interval{20 * kMicrosecond};
  stack_->EnablePolledCompletion(0, interval);
  Request* rq = NewRequest(1);
  stack_->SubmitAsync(rq);
  // Polling re-arms forever: bound the run instead of draining.
  sim_.RunUntil(5 * kMillisecond);
  ASSERT_EQ(completed_.size(), 1u);
  EXPECT_GT(rq->complete_time, rq->issue_time);
}

TEST_F(MechanismsTest, PollingBurnsCpuWhenIdle) {
  stack_->EnablePolledCompletion(0, TickDuration{10 * kMicrosecond});
  sim_.RunUntil(10 * kMillisecond);
  // ~1000 polls of poll_base each, charged as kernel work on the NCQ's core.
  EXPECT_GT(machine_->core(0).busy_ns(WorkLevel::kKernel),
            StackCosts{}.poll_base * 500);
}

// --- Remote-doorbell contention accounting -----------------------------------

TEST_F(MechanismsTest, RemoteNsqAccessAccountsContention) {
  SubmissionQueue sq(QueueId{0}, 16);
  // Same core twice: only the second overlapping acquire would wait; here no
  // overlap and no remote penalty.
  EXPECT_EQ(sq.AcquireSubmitLock(0, TickDuration{100}, CoreId{0},
                                 TickDuration{500}),
            kZeroDuration);
  EXPECT_EQ(sq.remote_acquires(), 0u);
  // A different core pays the cacheline penalty.
  EXPECT_EQ(sq.AcquireSubmitLock(1000, TickDuration{100}, CoreId{1},
                                 TickDuration{500}),
            TickDuration{500});
  EXPECT_EQ(sq.remote_acquires(), 1u);
  EXPECT_EQ(sq.in_contention_ns(), TickDuration{500});
  // Back on the same core: no penalty.
  EXPECT_EQ(sq.AcquireSubmitLock(5000, TickDuration{100}, CoreId{1},
                                 TickDuration{500}),
            kZeroDuration);
}

TEST_F(MechanismsTest, ContentionFeedsNsqMerit) {
  // The contention signal raises the NSQ merit (Algorithm 2 line 6).
  const double merit = NqReg::NsqMeritSample(/*contention_us=*/50.0,
                                             /*submitted=*/100.0,
                                             /*claimed_cores=*/2);
  EXPECT_DOUBLE_EQ(merit, 1.0);
}

}  // namespace
}  // namespace daredevil
