// troute: the tenant-NQ request router (§5.2).
//
// troute assesses tenants' SLAs from their ionice values (base priority),
// profiles T-tenants' outlier tendency at runtime, and routes each request
// (Algorithm 1) to an NSQ consistent with its SLA: high-priority tenants use
// their default NSQ; tagged T-tenants route outlier (sync/metadata) requests
// to a dedicated outlier NSQ; untagged T-tenants' outliers trigger a
// per-request nqreg query. troute also feeds nqreg: the calling context sets
// the MRU decrement m, and per-NSQ core bitmaps record likely submitters.
#ifndef DAREDEVIL_SRC_CORE_TROUTE_H_
#define DAREDEVIL_SRC_CORE_TROUTE_H_

#include <cstdint>
#include <map>

#include "src/core/blex.h"
#include "src/core/config.h"
#include "src/core/nqreg.h"
#include "src/stack/request.h"

namespace daredevil {

class TRoute {
 public:
  // Per-tenant routing state (lives alongside task_struct in the kernel).
  struct TenantState {
    NqPrio base_prio = NqPrio::kLow;
    int default_nsq = -1;
    int outlier_nsq = -1;  // only assigned to tagged T-tenants
    bool outlier_tag = false;
    uint64_t outlier_rqs = 0;
    uint64_t normal_rqs = 0;
    int requests_since_profile = 0;
    int claimed_core = -1;  // core whose bit is set in the NSQ bitmaps
  };

  TRoute(Blex* blex, NqReg* nqreg, const DaredevilConfig& config);

  void OnTenantStart(Tenant* tenant);
  void OnTenantExit(Tenant* tenant);
  // Re-assesses the base priority and re-schedules the default NSQ (the
  // caller charges the asynchronous kernel work, §5.2 runtime updates).
  void OnIoniceChange(Tenant* tenant);
  void OnTenantMigrated(Tenant* tenant, int old_core);

  // Algorithm 1. Returns the NSQ to enqueue on.
  int Route(Request* rq);

  // True when routing rq will need a per-request nqreg query (the
  // request-specific context of an untagged T-tenant) - costs extra CPU.
  bool NeedsPerRequestQuery(const Request& rq) const;

  const TenantState* GetState(TenantId tenant_id) const;
  DD_OBSERVER uint64_t priority_updates() const { return priority_updates_; }
  DD_OBSERVER uint64_t per_request_queries() const {
    return per_request_queries_;
  }

 private:
  TenantState& StateOf(Tenant* tenant);
  static NqPrio AssessPrio(const Tenant& tenant) {
    return tenant.IsLatencySensitive() ? NqPrio::kHigh : NqPrio::kLow;
  }
  void AssignDefaultNsq(TenantState& state, Tenant* tenant);
  void AssignOutlierNsq(TenantState& state, Tenant* tenant);
  void ReleaseClaims(TenantState& state);
  void Profile(TenantState& state, Tenant* tenant, bool outlier);

  Blex* blex_;
  NqReg* nqreg_;
  DaredevilConfig config_;
  // Ordered by tenant id: any future iteration (bulk re-assessment, stats
  // dumps) must be deterministic, not hash-order.
  std::map<TenantId, TenantState> tenants_;
  uint64_t priority_updates_ = 0;
  uint64_t per_request_queries_ = 0;
};

}  // namespace daredevil

#endif  // DAREDEVIL_SRC_CORE_TROUTE_H_
