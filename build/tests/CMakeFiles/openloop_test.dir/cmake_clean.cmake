file(REMOVE_RECURSE
  "CMakeFiles/openloop_test.dir/openloop_test.cc.o"
  "CMakeFiles/openloop_test.dir/openloop_test.cc.o.d"
  "openloop_test"
  "openloop_test.pdb"
  "openloop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openloop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
