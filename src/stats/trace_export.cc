#include "src/stats/trace_export.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "src/core/invariant.h"
#include "src/stats/metrics.h"
#include "src/stats/slo.h"
#include "src/stats/state_sampler.h"

namespace daredevil {

// --- RequestTimelineLog ----------------------------------------------------

RequestTimelineLog::RequestTimelineLog(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void RequestTimelineLog::Append(const Request& rq, int irq_core, int ncq) {
  if (!rq.HasDeviceTimeline()) {
    return;  // split parents complete via their children
  }
  RequestRecord rec;
  rec.id = rq.id;
  rec.tenant_id = rq.tenant != nullptr ? rq.tenant->id.value() : 0;
  rec.pages = rq.pages;
  rec.is_write = rq.is_write;
  rec.latency_sensitive =
      rq.tenant != nullptr && rq.tenant->IsLatencySensitive();
  rec.nsq = rq.routed_nsq;
  rec.ncq = ncq;
  rec.submit_core = rq.submit_core;
  rec.irq_core = irq_core;
  rec.complete_core = rq.tenant != nullptr ? rq.tenant->core : irq_core;
  rec.issue = rq.issue_time;
  rec.submit = rq.submit_time;
  rec.nsq_enqueue = rq.nsq_enqueue_time;
  rec.doorbell = rq.doorbell_time;
  rec.fetch_start = rq.fetch_start_time;
  rec.fetch = rq.fetch_time;
  rec.flash_start = rq.flash_start_time;
  rec.flash_end = rq.flash_end_time;
  rec.cqe_post = rq.cqe_post_time;
  rec.drain = rq.drain_time;
  rec.complete = rq.complete_time;

  ++total_;
  if (records_.size() < capacity_) {
    records_.push_back(rec);
    return;
  }
  full_ = true;
  ++dropped_;
  records_[head_] = rec;
  head_ = (head_ + 1) % capacity_;
}

std::vector<RequestRecord> RequestTimelineLog::Records() const {
  if (!full_) {
    return records_;
  }
  std::vector<RequestRecord> out;
  out.reserve(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    out.push_back(records_[(head_ + i) % records_.size()]);
  }
  return out;
}

void RequestTimelineLog::Clear() {
  records_.clear();
  head_ = 0;
  full_ = false;
  total_ = 0;
  dropped_ = 0;
}

// --- Event building --------------------------------------------------------

namespace {

std::string Quoted(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string TenantName(const TraceExportInput& input, uint64_t tenant_id) {
  auto it = input.tenant_names.find(tenant_id);
  if (it != input.tenant_names.end()) {
    return it->second;
  }
  return "tenant" + std::to_string(tenant_id);
}

std::string RequestLabel(const RequestRecord& r) {
  std::string label = "rq " + std::to_string(r.id);
  label += r.latency_sensitive ? " L" : " T";
  label += " " + std::to_string(r.pages) + "p";
  label += r.is_write ? " W" : " R";
  return label;
}

void AddMeta(std::vector<ChromeEvent>& out, int pid, int tid, const char* what,
             const std::string& name) {
  ChromeEvent e;
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = what;
  e.args.emplace_back("name", Quoted(name));
  out.push_back(e);
}

void BuildMetadata(const TraceExportInput& input,
                   const std::vector<RequestRecord>& records,
                   std::vector<ChromeEvent>& out) {
  AddMeta(out, kTracePidHost, 0, "process_name",
          "host (" + input.stack_name + ")");
  for (int c = 0; c < input.num_cores; ++c) {
    AddMeta(out, kTracePidHost, c, "thread_name", "core " + std::to_string(c));
  }
  // Only name NSQ tracks that actually carry events (128 idle tracks would
  // drown the view on a WS-M device).
  std::vector<bool> nsq_used(static_cast<size_t>(input.nr_nsq > 0 ? input.nr_nsq : 1),
                             false);
  auto mark = [&nsq_used](int nsq) {
    if (nsq >= 0 && static_cast<size_t>(nsq) < nsq_used.size()) {
      nsq_used[static_cast<size_t>(nsq)] = true;
    }
  };
  for (const RequestRecord& r : records) {
    mark(r.nsq);
  }
  for (const TraceEvent& e : input.events) {
    if (e.category == TraceCategory::kRoute ||
        e.category == TraceCategory::kDoorbell) {
      mark(static_cast<int>(e.a));
    }
  }
  AddMeta(out, kTracePidNsq, 0, "process_name", "NSQ head occupancy");
  for (size_t i = 0; i < nsq_used.size(); ++i) {
    if (!nsq_used[i]) {
      continue;
    }
    const int nsq = static_cast<int>(i);
    auto it = input.nsq_labels.find(nsq);
    AddMeta(out, kTracePidNsq, nsq, "thread_name",
            it != input.nsq_labels.end() ? it->second
                                         : "NSQ " + std::to_string(nsq));
  }
  AddMeta(out, kTracePidDevice, 0, "process_name", "device controller");
  AddMeta(out, kTracePidDevice, 0, "thread_name", "fetch engine");
  AddMeta(out, kTracePidNcq, 0, "process_name", "NCQ residency");
  AddMeta(out, kTracePidRequests, 0, "process_name", "request lifecycles");
  AddMeta(out, kTracePidCounters, 0, "process_name", "sampled state");
  AddMeta(out, kTracePidControl, 0, "process_name", "stack control");
  AddMeta(out, kTracePidControl, 0, "thread_name", "scheduling");
  if (input.slo != nullptr && !input.slo->empty()) {
    AddMeta(out, kTracePidSlo, 0, "process_name", "SLO conformance");
    int tid = 0;
    for (const auto& [tenant, r] : input.slo->tenants) {
      AddMeta(out, kTracePidSlo, tid, "thread_name", "SLO " + tenant);
      ++tid;
    }
  }
}

// Violation episodes as X slices and per-window fast burn rates as counters,
// one track per SLO-tracked tenant (map order = tid order).
void BuildSloEvents(const TraceExportInput& input,
                    std::vector<ChromeEvent>& out) {
  if (input.slo == nullptr || input.slo->empty()) {
    return;
  }
  auto fmt = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.15g", v);
    return std::string(buf);
  };
  int tid = 0;
  for (const auto& [tenant, r] : input.slo->tenants) {
    for (const SloEpisode& ep : r.episodes) {
      ChromeEvent x;
      x.ph = 'X';
      x.ts = ep.begin;
      x.dur = ep.duration();
      x.pid = kTracePidSlo;
      x.tid = tid;
      x.cat = "slo";
      x.name = "SLO violation " + tenant;
      x.args.emplace_back("peak_burn", fmt(ep.peak_burn));
      x.args.emplace_back("bad", std::to_string(ep.bad));
      x.args.emplace_back("total", std::to_string(ep.total));
      x.args.emplace_back("blame",
                          Quoted(ep.blame.empty() ? "unattributed" : ep.blame));
      x.args.emplace_back("mechanism", Quoted(ep.mechanism));
      out.push_back(x);
    }
    for (const SloWindow& win : r.windows) {
      ChromeEvent c;
      c.ph = 'C';
      c.ts = win.start;
      c.pid = kTracePidSlo;
      c.tid = tid;
      c.name = "burn " + tenant;
      c.args.emplace_back("fast", fmt(win.fast_burn));
      c.args.emplace_back("slow", fmt(win.slow_burn));
      out.push_back(c);
    }
    ++tid;
  }
}

// Per-request nested async lifecycle slices plus the resource-track slices
// derived from the record set.
void BuildRequestEvents(const TraceExportInput& input,
                        const std::vector<RequestRecord>& records,
                        std::vector<ChromeEvent>& out) {
  struct Phase {
    const char* name;
    Tick RequestRecord::*begin;
    Tick RequestRecord::*end;
  };
  static constexpr Phase kPhases[] = {
      {"submit", &RequestRecord::issue, &RequestRecord::nsq_enqueue},
      {"nsq-wait", &RequestRecord::nsq_enqueue, &RequestRecord::fetch_start},
      {"fetch", &RequestRecord::fetch_start, &RequestRecord::fetch},
      {"flash", &RequestRecord::fetch, &RequestRecord::flash_end},
      {"completion-wait", &RequestRecord::flash_end, &RequestRecord::drain},
      {"delivery", &RequestRecord::drain, &RequestRecord::complete},
  };

  for (const RequestRecord& r : records) {
    const std::string tenant = TenantName(input, r.tenant_id);
    ChromeEvent outer;
    outer.ph = 'b';
    outer.ts = r.issue;
    outer.pid = kTracePidRequests;
    outer.has_id = true;
    outer.id = r.id;
    outer.cat = "rq";
    outer.name = RequestLabel(r);
    outer.args.emplace_back("tenant", Quoted(tenant));
    outer.args.emplace_back("nsq", std::to_string(r.nsq));
    outer.args.emplace_back("ncq", std::to_string(r.ncq));
    outer.args.emplace_back("pages", std::to_string(r.pages));
    out.push_back(outer);
    for (const Phase& phase : kPhases) {
      const Tick begin = r.*(phase.begin);
      const Tick end = r.*(phase.end);
      if (end < begin) {
        continue;  // defensive: a torn timeline must not unbalance b/e
      }
      ChromeEvent b;
      b.ph = 'b';
      b.ts = begin;
      b.pid = kTracePidRequests;
      b.has_id = true;
      b.id = r.id;
      b.cat = "rq";
      b.name = phase.name;
      out.push_back(b);
      ChromeEvent e = b;
      e.ph = 'e';
      e.ts = end;
      out.push_back(e);
    }
    ChromeEvent end = outer;
    end.ph = 'e';
    end.ts = r.complete;
    end.args.clear();
    out.push_back(end);

    // Flash service (overlaps across chips -> async under the device pid).
    {
      ChromeEvent b;
      b.ph = 'b';
      b.ts = r.flash_start;
      b.pid = kTracePidDevice;
      b.has_id = true;
      b.id = r.id;
      b.cat = "flash";
      b.name = "flash " + RequestLabel(r);
      out.push_back(b);
      ChromeEvent e = b;
      e.ph = 'e';
      e.ts = r.flash_end;
      out.push_back(e);
    }
    // NCQ residency: completion posted -> drained by the driver.
    {
      ChromeEvent b;
      b.ph = 'b';
      b.ts = r.cqe_post;
      b.pid = kTracePidNcq;
      b.has_id = true;
      b.id = r.id;
      b.cat = "cqe";
      b.name = "cqe " + RequestLabel(r) + " NCQ" + std::to_string(r.ncq);
      out.push_back(b);
      ChromeEvent e = b;
      e.ph = 'e';
      e.ts = r.drain;
      out.push_back(e);
    }
    // Host-core instants + the cross-core IRQ hop flow arrow.
    {
      ChromeEvent i;
      i.ph = 'i';
      i.ts = r.submit;
      i.pid = kTracePidHost;
      i.tid = r.submit_core;
      i.name = "submit rq" + std::to_string(r.id);
      out.push_back(i);
      ChromeEvent d = i;
      d.ts = r.drain;
      d.tid = r.irq_core;
      d.name = "drain rq" + std::to_string(r.id);
      out.push_back(d);
      ChromeEvent c = i;
      c.ts = r.complete;
      c.tid = r.complete_core;
      c.name = "complete rq" + std::to_string(r.id);
      out.push_back(c);
    }
    if (r.complete_core != r.irq_core) {
      ChromeEvent s;
      s.ph = 's';
      s.ts = r.drain;
      s.pid = kTracePidHost;
      s.tid = r.irq_core;
      s.has_id = true;
      s.id = r.id;
      s.cat = "irq-hop";
      s.name = "irq-hop";
      out.push_back(s);
      ChromeEvent f = s;
      f.ph = 'f';
      f.ts = r.complete;
      f.tid = r.complete_core;
      out.push_back(f);
    }
  }

  // NSQ head-occupancy: within one NSQ the controller fetches FIFO, so the
  // request at the head occupies it from max(its visibility, the previous
  // head's departure) until its own fetch start. These slices are disjoint
  // by construction - exactly the HOL-blocking picture.
  std::map<int, std::vector<const RequestRecord*>> by_nsq;
  for (const RequestRecord& r : records) {
    by_nsq[r.nsq].push_back(&r);
  }
  for (auto& [nsq, rqs] : by_nsq) {
    std::sort(rqs.begin(), rqs.end(),
              [](const RequestRecord* a, const RequestRecord* b) {
                if (a->fetch_start != b->fetch_start) {
                  return a->fetch_start < b->fetch_start;
                }
                return a->id < b->id;
              });
    Tick prev_departure = 0;
    for (const RequestRecord* r : rqs) {
      const Tick visible = r->doorbell > 0 ? r->doorbell : r->nsq_enqueue;
      const Tick head_start = std::max(visible, prev_departure);
      ChromeEvent x;
      x.ph = 'X';
      x.ts = head_start;
      x.dur = r->fetch_start > head_start ? r->fetch_start - head_start : 0;
      x.pid = kTracePidNsq;
      x.tid = nsq;
      x.name = RequestLabel(*r);
      x.args.emplace_back("tenant", Quoted(TenantName(input, r->tenant_id)));
      x.args.emplace_back("pages", std::to_string(r->pages));
      out.push_back(x);
      prev_departure = r->fetch_start;
    }
  }

  // Fetch engine: serialized in the controller, so plain X slices.
  std::vector<const RequestRecord*> by_fetch;
  by_fetch.reserve(records.size());
  for (const RequestRecord& r : records) {
    by_fetch.push_back(&r);
  }
  std::sort(by_fetch.begin(), by_fetch.end(),
            [](const RequestRecord* a, const RequestRecord* b) {
              if (a->fetch_start != b->fetch_start) {
                return a->fetch_start < b->fetch_start;
              }
              return a->id < b->id;
            });
  for (const RequestRecord* r : by_fetch) {
    ChromeEvent x;
    x.ph = 'X';
    x.ts = r->fetch_start;
    x.dur = r->fetch > r->fetch_start ? r->fetch - r->fetch_start : 0;
    x.pid = kTracePidDevice;
    x.tid = 0;
    x.name = "fetch " + RequestLabel(*r);
    x.args.emplace_back("nsq", std::to_string(r->nsq));
    out.push_back(x);
  }
}

void BuildTraceEventInstants(const TraceExportInput& input,
                             bool have_records,
                             std::vector<ChromeEvent>& out) {
  for (const TraceEvent& te : input.events) {
    ChromeEvent e;
    e.ph = 'i';
    e.ts = te.at;
    switch (te.category) {
      case TraceCategory::kDoorbell:
        e.pid = kTracePidNsq;
        e.tid = static_cast<int>(te.a);
        e.name = "doorbell";
        e.args.emplace_back("batch", std::to_string(te.b));
        break;
      case TraceCategory::kIrq:
        e.pid = kTracePidHost;
        e.tid = static_cast<int>(te.b);
        e.name = "irq NCQ" + std::to_string(te.a);
        break;
      case TraceCategory::kSchedule:
        e.pid = kTracePidControl;
        e.tid = 0;
        e.name = "nq-schedule";
        e.args.emplace_back("id", std::to_string(te.id));
        e.args.emplace_back("a", std::to_string(te.a));
        e.args.emplace_back("b", std::to_string(te.b));
        break;
      case TraceCategory::kMigrate:
        e.pid = kTracePidControl;
        e.tid = 0;
        e.name = "migrate tenant" + std::to_string(te.id);
        e.args.emplace_back("a", std::to_string(te.a));
        e.args.emplace_back("b", std::to_string(te.b));
        break;
      case TraceCategory::kSubmit:
        // Redundant with record-derived instants when records exist (and the
        // trace ring may have dropped its oldest events, so records win).
        if (have_records) {
          continue;
        }
        e.pid = kTracePidHost;
        e.tid = static_cast<int>(te.a);
        e.name = "submit rq" + std::to_string(te.id);
        break;
      case TraceCategory::kDeliver:
        if (have_records) {
          continue;
        }
        e.pid = kTracePidHost;
        e.tid = static_cast<int>(te.a);
        e.name = "deliver rq" + std::to_string(te.id);
        break;
      // Fault-path events land on the control track: they are rare, global
      // in scope, and reading them against the NSQ/core tracks is exactly
      // how an injected fault's blast radius is attributed. The numeric kind
      // mirrors FaultKind (src/fault/fault_plan.h); stats sits below the
      // fault layer in the DAG, so the name table is not reachable here.
      case TraceCategory::kFaultInject:
        e.pid = kTracePidControl;
        e.tid = 0;
        e.name = "fault-inject";
        e.args.emplace_back("id", std::to_string(te.id));
        e.args.emplace_back("where", std::to_string(te.a));
        e.args.emplace_back("kind", std::to_string(te.b));
        break;
      case TraceCategory::kTimeout:
        e.pid = kTracePidControl;
        e.tid = 0;
        e.name = "timeout rq" + std::to_string(te.id);
        e.args.emplace_back("nsq", std::to_string(te.a));
        e.args.emplace_back("attempt", std::to_string(te.b));
        break;
      case TraceCategory::kRetry:
        e.pid = kTracePidControl;
        e.tid = 0;
        e.name = "retry rq" + std::to_string(te.id);
        e.args.emplace_back("nsq", std::to_string(te.a));
        e.args.emplace_back("attempt", std::to_string(te.b));
        break;
      case TraceCategory::kAbort:
        e.pid = kTracePidControl;
        e.tid = 0;
        e.name = "abort rq" + std::to_string(te.id);
        e.args.emplace_back("nsq", std::to_string(te.a));
        e.args.emplace_back("attempt", std::to_string(te.b));
        break;
      default:
        continue;  // lifecycle categories are covered by record slices
    }
    out.push_back(e);
  }
}

void BuildCounterEvents(const TraceExportInput& input,
                        std::vector<ChromeEvent>& out) {
  if (input.sampler == nullptr) {
    return;
  }
  const auto& times = input.sampler->times();
  for (const auto& [name, values] : input.sampler->series()) {
    bool all_zero = true;
    for (double v : values) {
      if (v != 0.0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      continue;
    }
    for (size_t i = 0; i < times.size() && i < values.size(); ++i) {
      ChromeEvent c;
      c.ph = 'C';
      c.ts = times[i];
      c.pid = kTracePidCounters;
      c.tid = 0;
      c.name = name;
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.15g", values[i]);
      c.args.emplace_back("value", buf);
      out.push_back(c);
    }
  }
}

}  // namespace

std::vector<ChromeEvent> BuildChromeEvents(const TraceExportInput& input) {
  std::vector<ChromeEvent> meta;
  std::vector<ChromeEvent> data;
  BuildMetadata(input, input.requests, meta);
  BuildRequestEvents(input, input.requests, data);
  BuildTraceEventInstants(input, !input.requests.empty(), data);
  BuildCounterEvents(input, data);
  BuildSloEvents(input, data);
  // Stable sort keeps emission order for equal timestamps, which preserves
  // begin/end pairing within each request's nested async slices.
  std::stable_sort(data.begin(), data.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     return a.ts < b.ts;
                   });
  meta.insert(meta.end(), data.begin(), data.end());
  return meta;
}

// --- Serialization ---------------------------------------------------------

namespace {

// Chrome trace timestamps are microseconds; ticks are nanoseconds. Fixed
// "<us>.<ns%1000>" formatting keeps the export byte-deterministic (no
// floating-point rounding in play).
std::string MicrosFromTicks(Tick ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

void AppendEventJson(JsonWriter& w, const ChromeEvent& e) {
  w.BeginObject();
  const char ph[2] = {e.ph, '\0'};
  w.Key("ph").String(ph);
  if (e.ph != 'M') {
    w.Key("ts").Raw(MicrosFromTicks(e.ts));
  }
  if (e.ph == 'X') {
    w.Key("dur").Raw(MicrosFromTicks(e.dur));
  }
  w.Key("pid").Int(e.pid);
  w.Key("tid").Int(e.tid);
  w.Key("name").String(e.name);
  if (!e.cat.empty()) {
    w.Key("cat").String(e.cat);
  }
  if (e.has_id) {
    w.Key("id").String(std::to_string(e.id));
  }
  if (e.ph == 's' || e.ph == 'f') {
    // Legacy flow finish binds to the enclosing slice.
    w.Key("bp").String("e");
  }
  if (!e.args.empty()) {
    w.Key("args").BeginObject();
    for (const auto& [key, value] : e.args) {
      w.Key(key).Raw(value);
    }
    w.EndObject();
  }
  w.EndObject();
}

void AppendRequestRecordJson(JsonWriter& w, const RequestRecord& r) {
  w.BeginObject();
  w.Key("id").UInt(r.id);
  w.Key("tenant").UInt(r.tenant_id);
  w.Key("pages").UInt(r.pages);
  w.Key("write").Bool(r.is_write);
  w.Key("ls").Bool(r.latency_sensitive);
  w.Key("nsq").Int(r.nsq);
  w.Key("ncq").Int(r.ncq);
  w.Key("submit_core").Int(r.submit_core);
  w.Key("irq_core").Int(r.irq_core);
  w.Key("complete_core").Int(r.complete_core);
  w.Key("issue").Int(r.issue);
  w.Key("submit").Int(r.submit);
  w.Key("nsq_enqueue").Int(r.nsq_enqueue);
  w.Key("doorbell").Int(r.doorbell);
  w.Key("fetch_start").Int(r.fetch_start);
  w.Key("fetch").Int(r.fetch);
  w.Key("flash_start").Int(r.flash_start);
  w.Key("flash_end").Int(r.flash_end);
  w.Key("cqe_post").Int(r.cqe_post);
  w.Key("drain").Int(r.drain);
  w.Key("complete").Int(r.complete);
  w.EndObject();
}

}  // namespace

std::string SerializeChromeTrace(const TraceExportInput& input) {
  const std::vector<ChromeEvent> events = BuildChromeEvents(input);
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ns");
  w.Key("otherData").BeginObject();
  w.Key("stack").String(input.stack_name);
  w.Key("num_cores").Int(input.num_cores);
  w.Key("nr_nsq").Int(input.nr_nsq);
  w.Key("nr_ncq").Int(input.nr_ncq);
  w.Key("trace_events").UInt(input.events.size());
  w.Key("request_records").UInt(input.requests.size());
  w.EndObject();
  w.Key("traceEvents").BeginArray();
  for (const ChromeEvent& e : events) {
    AppendEventJson(w, e);
  }
  w.EndArray();
  w.Key("ddRequests").BeginArray();
  for (const RequestRecord& r : input.requests) {
    AppendRequestRecordJson(w, r);
  }
  w.EndArray();
  if (input.sampler != nullptr) {
    w.Key("ddSampler");
    input.sampler->Snapshot().AppendJson(w);
  }
  w.EndObject();
  return w.str();
}

// --- JSON validation -------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool Check(std::string* error) {
    SkipWs();
    if (!Value(0)) {
      Fail(error);
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      err_ = "trailing data";
      Fail(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  void Fail(std::string* error) const {
    if (error != nullptr) {
      *error = err_ + " at offset " + std::to_string(pos_);
    }
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) {
      err_ = "bad literal";
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      err_ = "expected string";
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          break;
        }
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              err_ = "bad \\u escape";
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          err_ = "bad escape";
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "raw control char in string";
        return false;
      }
      ++pos_;
    }
    err_ = "unterminated string";
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (s_[start] == '-' && pos_ == start + 1)) {
      err_ = "bad number";
      return false;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err_ = "bad fraction";
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err_ = "bad exponent";
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }

  bool Value(int depth) {
    if (depth > kMaxDepth) {
      err_ = "nesting too deep";
      return false;
    }
    if (pos_ >= s_.size()) {
      err_ = "unexpected end";
      return false;
    }
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        if (!String()) {
          return false;
        }
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          err_ = "expected ':'";
          return false;
        }
        ++pos_;
        SkipWs();
        if (!Value(depth + 1)) {
          return false;
        }
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        err_ = "expected ',' or '}'";
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        if (!Value(depth + 1)) {
          return false;
        }
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        err_ = "expected ',' or ']'";
        return false;
      }
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  std::string_view s_;
  size_t pos_ = 0;
  std::string err_ = "invalid JSON";
};

}  // namespace

bool JsonLooksValid(std::string_view json, std::string* error) {
  return JsonChecker(json).Check(error);
}

}  // namespace daredevil
