# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/stack_test[1]_include.cmake")
include("/root/repo/build/tests/blkmq_test[1]_include.cmake")
include("/root/repo/build/tests/blkswitch_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/mechanisms_test[1]_include.cmake")
include("/root/repo/build/tests/virtio_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/iosched_test[1]_include.cmake")
include("/root/repo/build/tests/openloop_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/zns_test[1]_include.cmake")
