#include "src/workload/open_loop.h"

#include "src/core/invariant.h"

namespace daredevil {

OpenLoopJob::OpenLoopJob(Machine* machine, StorageStack* stack,
                         const OpenLoopSpec& spec, uint64_t tenant_id, Rng rng,
                         Tick measure_start, Tick measure_end)
    : machine_(machine),
      stack_(stack),
      spec_(spec),
      rng_(rng),
      measure_start_(measure_start),
      measure_end_(measure_end),
      next_rq_id_(tenant_id << 32) {
  tenant_.id = TenantId{tenant_id};
  tenant_.name = spec.name;
  tenant_.group = spec.group;
  tenant_.ionice = spec.ionice;
  tenant_.core = spec.core;
  tenant_.primary_nsid = spec.nsid;
  DD_CHECK(spec_.iops > 0) << "open-loop job " << spec_.name
                           << " needs a positive arrival rate";
}

void OpenLoopJob::Start() {
  machine_->sim().At(spec_.start_time, [this]() {
    stack_->OnTenantStart(&tenant_);
    ScheduleNextArrival();
  });
}

void OpenLoopJob::ScheduleNextArrival() {
  if (machine_->now() >= measure_end_) {
    return;
  }
  // Poisson arrivals: exponential inter-arrival gap for the mean rate. When
  // bursting, the whole burst shares one arrival slot.
  const double mean_gap_ns = 1e9 / spec_.iops;
  const TickDuration gap{static_cast<Tick>(rng_.NextExponential(mean_gap_ns))};
  machine_->sim().After(gap, [this]() {
    const bool burst = spec_.burst_prob > 0 && rng_.NextBool(spec_.burst_prob);
    Arrive(burst ? spec_.burst_len : 1);
    ScheduleNextArrival();
  });
}

void OpenLoopJob::Arrive(int burst_remaining) {
  for (int i = 0; i < burst_remaining; ++i) {
    ++arrivals_;
    if (outstanding_ >= spec_.max_outstanding) {
      ++dropped_;
      continue;
    }
    IssueOne();
  }
}

Request* OpenLoopJob::AllocRequest() {
  if (!free_list_.empty()) {
    Request* rq = free_list_.back();
    free_list_.pop_back();
    return rq;
  }
  auto owned = std::make_unique<Request>();
  owned->tenant = &tenant_;
  owned->on_complete = [this](Request* r) { OnComplete(r); };
  pool_.push_back(std::move(owned));
  return pool_.back().get();
}

void OpenLoopJob::IssueOne() {
  Request* rq = AllocRequest();
  ++outstanding_;
  rq->id = ++next_rq_id_;
  rq->nsid = spec_.nsid;
  rq->pages = spec_.pages;
  rq->is_write = spec_.is_write;
  rq->is_sync = false;
  rq->is_meta = false;
  const uint64_t ns_pages = stack_->device().NamespacePages(spec_.nsid);
  if (spec_.random) {
    rq->lba = Lba{rng_.NextBelow(ns_pages - spec_.pages + 1)};
  } else {
    rq->lba = Lba{seq_lba_};
    seq_lba_ += spec_.pages;
    if (seq_lba_ + spec_.pages > ns_pages) {
      seq_lba_ = 0;
    }
  }
  rq->ResetTimeline();  // pooled request: clear the previous run's stamps
  rq->issue_time = machine_->now();
  rq->routed_nsq = -1;
  rq->submit_core = tenant_.core;
  const TickDuration issue_cost =
      stack_->costs().syscall +
      static_cast<Tick>(spec_.pages) * stack_->costs().per_page_user;
  machine_->Post(tenant_.core, WorkLevel::kUser, issue_cost,
                 [this, rq]() {
                   rq->submit_core = tenant_.core;
                   stack_->SubmitAsync(rq);
                 },
                 tenant_.id);
}

void OpenLoopJob::OnComplete(Request* rq) {
  --outstanding_;
  ++completed_;
  if (rq->status != IoStatus::kOk) {
    ++errored_;
  }
  const Tick now = machine_->now();
  if (now >= measure_start_ && now < measure_end_) {
    latency_.Record(rq->complete_time - rq->issue_time);
    stages_.Record(*rq);
    ++ios_;
  }
  free_list_.push_back(rq);
}

}  // namespace daredevil
