file(REMOVE_RECURSE
  "../bench/bench_fig02_motivation"
  "../bench/bench_fig02_motivation.pdb"
  "CMakeFiles/bench_fig02_motivation.dir/bench_fig02_motivation.cc.o"
  "CMakeFiles/bench_fig02_motivation.dir/bench_fig02_motivation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
