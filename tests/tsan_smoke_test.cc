// Shard-safety smoke test: two independent seeded simulations running
// concurrently on two threads must (a) trip no ThreadSanitizer report when
// built with -DDAREDEVIL_TSAN=ON and (b) produce exactly the fingerprints
// their single-threaded runs produce. Any hidden shared mutable state — a
// namespace-scope counter, a function-local static cache, a shared RNG —
// breaks one or the other. This is the dynamic counterpart of the ddanalyze
// global-state / shard-ownership / rng-discipline passes: the passes prove
// the *code* has no cross-shard roots, this proves the *execution* doesn't.
//
// The test is also run in regular (non-TSan) CI via `ctest -L engine`; it is
// cheap and the fingerprint-equality half is meaningful in any build.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "src/workload/scenario.h"

namespace daredevil {
namespace {

ScenarioConfig SmokeConfig(StackKind kind, uint64_t seed) {
  ScenarioConfig cfg = MakeSvmConfig(2);
  cfg.stack = kind;
  cfg.warmup = 1 * kMillisecond;
  cfg.duration = 8 * kMillisecond;
  cfg.seed = seed;
  AddLTenants(cfg, 1);
  AddTTenants(cfg, 2);
  return cfg;
}

struct RunOutcome {
  uint64_t fingerprint = 0;
  uint64_t completed = 0;
};

RunOutcome RunOne(const ScenarioConfig& cfg) {
  const ScenarioResult r = RunScenario(cfg);
  return {r.SimulationFingerprint(), r.total_completed};
}

TEST(TsanSmoke, TwoConcurrentSimulatorsMatchTheirSerialRuns) {
  // Deliberately different stacks AND different seeds: maximally distinct
  // shards, so accidental sharing cannot hide behind identical state.
  const ScenarioConfig cfg_a = SmokeConfig(StackKind::kVanilla, 42);
  const ScenarioConfig cfg_b = SmokeConfig(StackKind::kDareFull, 1234);

  const RunOutcome serial_a = RunOne(cfg_a);
  const RunOutcome serial_b = RunOne(cfg_b);
  ASSERT_GT(serial_a.completed, 0u);
  ASSERT_GT(serial_b.completed, 0u);

  RunOutcome threaded_a;
  RunOutcome threaded_b;
  std::thread ta([&] { threaded_a = RunOne(cfg_a); });
  std::thread tb([&] { threaded_b = RunOne(cfg_b); });
  ta.join();
  tb.join();

  EXPECT_EQ(threaded_a.fingerprint, serial_a.fingerprint)
      << "shard A diverged when run next to shard B";
  EXPECT_EQ(threaded_b.fingerprint, serial_b.fingerprint)
      << "shard B diverged when run next to shard A";
}

TEST(TsanSmoke, SameScenarioTwiceInParallelIsByteIdentical) {
  // The sharper variant: the *same* scenario on both threads. Any shared
  // root (global counter, shared RNG stream) perturbs at least one copy.
  const ScenarioConfig cfg = SmokeConfig(StackKind::kBlkSwitch, 7);
  const RunOutcome serial = RunOne(cfg);
  ASSERT_GT(serial.completed, 0u);

  RunOutcome a;
  RunOutcome b;
  std::thread ta([&] { a = RunOne(cfg); });
  std::thread tb([&] { b = RunOne(cfg); });
  ta.join();
  tb.join();

  EXPECT_EQ(a.fingerprint, serial.fingerprint);
  EXPECT_EQ(b.fingerprint, serial.fingerprint);
}

}  // namespace
}  // namespace daredevil
