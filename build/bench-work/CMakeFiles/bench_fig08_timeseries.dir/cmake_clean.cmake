file(REMOVE_RECURSE
  "../bench/bench_fig08_timeseries"
  "../bench/bench_fig08_timeseries.pdb"
  "CMakeFiles/bench_fig08_timeseries.dir/bench_fig08_timeseries.cc.o"
  "CMakeFiles/bench_fig08_timeseries.dir/bench_fig08_timeseries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
