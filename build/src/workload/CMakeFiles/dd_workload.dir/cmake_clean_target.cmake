file(REMOVE_RECURSE
  "libdd_workload.a"
)
